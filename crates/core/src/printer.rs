//! The printer — result tree to output string (paper §III-B d).
//!
//! *"The tree's nodes are passed in postfix order to the printer that
//! generates the output string. For each node it appends the corresponding
//! string representation to the output string."* The output buffer has a
//! fixed capacity (it is the device half of the command buffer), so
//! overflow is a real error.

use crate::error::{CuliError, Result};
use crate::interp::Interp;
use crate::node::{NodeType, Payload};
use crate::types::NodeId;
use culi_strlib::StrBuf;

/// Prints `node` through a pooled buffer of the interpreter's configured
/// output capacity and returns the bytes. The working buffer comes from
/// [`Interp::take_print_buf`], so repeated printing reuses its capacity —
/// only the returned copy is a fresh allocation (callers that can consume
/// the bytes in place should use [`print_into`] with their own pooled
/// buffer instead).
pub fn print(interp: &mut Interp, node: NodeId) -> Result<Vec<u8>> {
    let mut buf = interp.take_print_buf();
    let result = print_into(interp, node, &mut buf);
    let out = result.map(|_| buf.as_bytes().to_vec());
    interp.put_print_buf(buf);
    out
}

/// Prints `node` to the end of `buf`.
pub fn print_into(interp: &mut Interp, node: NodeId, buf: &mut StrBuf) -> Result<()> {
    let cap = buf.capacity();
    let before = buf.len();
    let result = walk(interp, node, buf, 0);
    let written = (buf.len() - before) as u64;
    interp.meter.output_bytes(written);
    result.map_err(|_| CuliError::OutputFull { capacity: cap })
}

/// Convenience: print to a `String` (UTF-8-lossy; CuLi text is ASCII).
/// Like [`print()`], the working buffer is pooled on the interpreter; only
/// the returned `String` itself is allocated.
pub fn print_to_string(interp: &mut Interp, node: NodeId) -> Result<String> {
    let mut buf = interp.take_print_buf();
    let result = print_into(interp, node, &mut buf);
    let out = result.map(|_| String::from_utf8_lossy(buf.as_bytes()).into_owned());
    interp.put_print_buf(buf);
    out
}

type BufResult = core::result::Result<(), culi_strlib::buf::BufFull>;

fn walk(interp: &mut Interp, node: NodeId, buf: &mut StrBuf, depth: usize) -> BufResult {
    // Depth guard: printing is structural recursion over an acyclic tree,
    // but a buggy caller could hand us a cycle; the arena makes cycles
    // impossible to *construct* through the public API, so a plain debug
    // assert on depth suffices.
    debug_assert!(depth < 100_000, "print recursion runaway");
    let n = *interp.arena.get(node);
    match n.ty {
        NodeType::Nil => buf.push_bytes(b"nil"),
        NodeType::True => buf.push_bytes(b"T"),
        NodeType::Int => match n.payload {
            Payload::Int(v) => {
                interp.meter.number_format();
                buf.push_i64(v)
            }
            _ => unreachable!("int node without int payload"),
        },
        NodeType::Float => match n.payload {
            Payload::Float(v) => {
                interp.meter.number_format();
                buf.push_f64(v)
            }
            _ => unreachable!("float node without float payload"),
        },
        NodeType::Str => match n.payload {
            Payload::Text(s) => {
                buf.push(b'"')?;
                buf.push_bytes(interp.strings.get(s))?;
                buf.push(b'"')
            }
            _ => unreachable!("string node without text payload"),
        },
        NodeType::Symbol => match n.payload {
            Payload::Text(s) => buf.push_bytes(interp.strings.get(s)),
            _ => unreachable!("symbol node without text payload"),
        },
        NodeType::Function => match n.payload {
            Payload::Builtin(b_id) => {
                buf.push_bytes(b"#<builtin ")?;
                let name = interp.builtins.name(b_id);
                buf.push_bytes(name.as_bytes())?;
                buf.push(b'>')
            }
            _ => unreachable!("function node without builtin payload"),
        },
        NodeType::Form => buf.push_bytes(b"#<form>"),
        NodeType::Macro => buf.push_bytes(b"#<macro>"),
        NodeType::List | NodeType::Expression => {
            buf.push(b'(')?;
            // Follow the sibling chain directly — no per-list child vector.
            let mut cur = match n.payload {
                Payload::List { first, .. } => first,
                _ => None,
            };
            let mut first_kid = true;
            while let Some(kid) = cur {
                if !first_kid {
                    buf.push(b' ')?;
                }
                first_kid = false;
                walk(interp, kid, buf, depth + 1)?;
                cur = interp.arena.get(kid).next;
            }
            buf.push(b')')
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, InterpConfig};
    use crate::parser::parse;

    fn roundtrip(src: &str) -> String {
        let mut i = Interp::new(InterpConfig::default());
        let forms = parse(&mut i, src.as_bytes()).unwrap();
        print_to_string(&mut i, forms[0]).unwrap()
    }

    #[test]
    fn primitives_print() {
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("1.5"), "1.5");
        assert_eq!(roundtrip("nil"), "nil");
        assert_eq!(roundtrip("T"), "T");
        assert_eq!(roundtrip("foo"), "foo");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn lists_print_parenthesized() {
        assert_eq!(roundtrip("(1 2 3)"), "(1 2 3)");
        assert_eq!(roundtrip("()"), "()");
        assert_eq!(roundtrip("(a (b c) d)"), "(a (b c) d)");
    }

    #[test]
    fn print_normalizes_whitespace() {
        assert_eq!(roundtrip("(  1    2\n3 )"), "(1 2 3)");
    }

    #[test]
    fn output_overflow_is_an_error() {
        let mut i = Interp::new(InterpConfig {
            output_capacity: 4,
            ..Default::default()
        });
        let forms = parse(&mut i, b"(1 2 3 4 5)").unwrap();
        assert_eq!(
            print(&mut i, forms[0]),
            Err(CuliError::OutputFull { capacity: 4 })
        );
    }

    #[test]
    fn printing_charges_output_bytes() {
        let mut i = Interp::new(InterpConfig::default());
        let forms = parse(&mut i, b"(1 2 3)").unwrap();
        let before = i.meter.snapshot();
        print(&mut i, forms[0]).unwrap();
        let d = i.meter.snapshot().delta_since(&before);
        assert_eq!(d.output_bytes, 7); // "(1 2 3)"
        assert_eq!(d.number_formats, 3);
    }

    #[test]
    fn pooled_print_buffer_is_cleared_between_prints() {
        let mut i = Interp::new(InterpConfig::default());
        let forms = parse(&mut i, b"(1 2 3) (4 5)").unwrap();
        assert_eq!(print_to_string(&mut i, forms[0]).unwrap(), "(1 2 3)");
        assert_eq!(print_to_string(&mut i, forms[1]).unwrap(), "(4 5)");
        assert_eq!(print_to_string(&mut i, forms[0]).unwrap(), "(1 2 3)");
    }

    #[test]
    fn overflow_recycles_the_buffer() {
        let mut i = Interp::new(InterpConfig {
            output_capacity: 4,
            ..Default::default()
        });
        let forms = parse(&mut i, b"(1 2 3 4 5) 7").unwrap();
        assert!(print(&mut i, forms[0]).is_err());
        assert_eq!(print_to_string(&mut i, forms[1]).unwrap(), "7");
    }

    #[test]
    fn builtin_node_prints_with_name() {
        let mut i = Interp::new(InterpConfig::default());
        // `+` resolves to its function node during eval; print one directly.
        let plus = i.lookup_global(b"+").expect("+ registered");
        let s = print_to_string(&mut i, plus).unwrap();
        assert_eq!(s, "#<builtin +>");
    }
}
