//! Operation counting — the raw material of the simulated timing model.
//!
//! CuLi's evaluation (paper §IV) is reported in three phases — parsing,
//! evaluation, printing — whose durations differ radically between devices.
//! Rather than guessing times, the interpreter *counts* every primitive
//! operation it performs; a device model (in `culi-gpu-sim`) later converts
//! those counts into simulated nanoseconds using per-device operation costs.
//! Counts are exact and deterministic, so figure regeneration is exactly
//! reproducible.

/// Raw operation counters for one stretch of interpreter work.
///
/// All counters are cumulative; use [`Counters::delta_since`] to isolate a
/// phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes examined by the tokenizer (whitespace included). Dominates the
    /// parse phase — the paper attributes Fermi's parsing advantage to
    /// byte-stream throughput (L2 size, memory-bus width).
    pub chars_scanned: u64,
    /// Nodes allocated from the arena.
    pub nodes_alloc: u64,
    /// Nodes returned to the arena.
    pub nodes_freed: u64,
    /// Node reads (following child/sibling links, reading payloads).
    pub node_reads: u64,
    /// Evaluator steps (one per `eval` entry).
    pub eval_steps: u64,
    /// Environment bindings probed during symbol lookup.
    pub env_probes: u64,
    /// Bytes compared during symbol comparisons (the C code `strcmp`s its
    /// way through environment chains).
    pub symbol_cmp_bytes: u64,
    /// Arithmetic/comparison primitive operations executed.
    pub arith_ops: u64,
    /// Built-in function invocations.
    pub builtin_calls: u64,
    /// User-defined form (defun/lambda/macro) applications.
    pub form_applies: u64,
    /// Bytes appended to the output string by the printer.
    pub output_bytes: u64,
    /// Number-formatting operations (itoa/dtoa) performed while printing.
    pub number_formats: u64,
}

impl Counters {
    /// Element-wise `self - earlier`; counters are monotone so this is the
    /// work done since `earlier` was snapshotted.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            chars_scanned: self.chars_scanned - earlier.chars_scanned,
            nodes_alloc: self.nodes_alloc - earlier.nodes_alloc,
            nodes_freed: self.nodes_freed - earlier.nodes_freed,
            node_reads: self.node_reads - earlier.node_reads,
            eval_steps: self.eval_steps - earlier.eval_steps,
            env_probes: self.env_probes - earlier.env_probes,
            symbol_cmp_bytes: self.symbol_cmp_bytes - earlier.symbol_cmp_bytes,
            arith_ops: self.arith_ops - earlier.arith_ops,
            builtin_calls: self.builtin_calls - earlier.builtin_calls,
            form_applies: self.form_applies - earlier.form_applies,
            output_bytes: self.output_bytes - earlier.output_bytes,
            number_formats: self.number_formats - earlier.number_formats,
        }
    }

    /// Element-wise sum, for aggregating per-worker counters.
    pub fn add(&mut self, other: &Counters) {
        self.chars_scanned += other.chars_scanned;
        self.nodes_alloc += other.nodes_alloc;
        self.nodes_freed += other.nodes_freed;
        self.node_reads += other.node_reads;
        self.eval_steps += other.eval_steps;
        self.env_probes += other.env_probes;
        self.symbol_cmp_bytes += other.symbol_cmp_bytes;
        self.arith_ops += other.arith_ops;
        self.builtin_calls += other.builtin_calls;
        self.form_applies += other.form_applies;
        self.output_bytes += other.output_bytes;
        self.number_formats += other.number_formats;
    }

    /// Total of all counters — a crude "work units" scalar used by tests to
    /// assert that some work happened.
    pub fn total(&self) -> u64 {
        self.chars_scanned
            + self.nodes_alloc
            + self.nodes_freed
            + self.node_reads
            + self.eval_steps
            + self.env_probes
            + self.symbol_cmp_bytes
            + self.arith_ops
            + self.builtin_calls
            + self.form_applies
            + self.output_bytes
            + self.number_formats
    }
}

/// Fuel budget value meaning "no limit".
pub const FUEL_UNLIMITED: u64 = u64::MAX;

/// The meter carried by the interpreter. A thin wrapper so call sites read
/// as intent (`meter.count_alloc()`) and so future backends can hook counts
/// without touching the interpreter.
///
/// The meter also carries the **fuel budget**: an absolute `eval_steps`
/// deadline armed once per command. The exhaustion check is a single
/// integer compare against the counter evaluation charges anyway, so the
/// unlimited case (deadline `u64::MAX`) costs ~0.
#[derive(Debug, Clone)]
pub struct Meter {
    counters: Counters,
    /// The per-command budget last armed (in evaluator steps); kept for
    /// error reporting. [`FUEL_UNLIMITED`] means no limit.
    fuel_budget: u64,
    /// Absolute `eval_steps` value at which the current command aborts.
    fuel_deadline: u64,
}

impl Default for Meter {
    fn default() -> Self {
        // NOT derivable: a zero deadline would mean "always exhausted".
        Self {
            counters: Counters::default(),
            fuel_budget: FUEL_UNLIMITED,
            fuel_deadline: FUEL_UNLIMITED,
        }
    }
}

impl Meter {
    /// Fresh meter with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cumulative counters.
    pub fn snapshot(&self) -> Counters {
        self.counters
    }

    /// Resets every counter to zero and re-arms the current budget from
    /// the (now zero) step count.
    pub fn reset(&mut self) {
        self.counters = Counters::default();
        let budget = self.fuel_budget;
        self.arm_fuel(budget);
    }

    /// Arms a fresh per-command fuel budget: evaluation aborts with
    /// [`crate::CuliError::FuelExhausted`] once `budget` more evaluator
    /// steps have been charged. Called at command boundaries (never
    /// mid-command, so a `|||` job cannot re-arm its section's budget).
    pub fn arm_fuel(&mut self, budget: u64) {
        self.fuel_budget = budget;
        self.fuel_deadline = if budget == FUEL_UNLIMITED {
            FUEL_UNLIMITED
        } else {
            self.counters.eval_steps.saturating_add(budget)
        };
    }

    /// The budget last armed (for error reporting).
    pub fn fuel_budget(&self) -> u64 {
        self.fuel_budget
    }

    /// `true` once the armed budget is spent. One compare; in the
    /// unlimited case the deadline is `u64::MAX` and this is never true.
    #[inline]
    pub fn fuel_exhausted(&self) -> bool {
        self.counters.eval_steps >= self.fuel_deadline
    }

    #[inline]
    pub(crate) fn chars_scanned(&mut self, n: u64) {
        self.counters.chars_scanned += n;
    }
    #[inline]
    pub(crate) fn node_alloc(&mut self) {
        self.counters.nodes_alloc += 1;
    }
    #[inline]
    pub(crate) fn node_freed(&mut self) {
        self.counters.nodes_freed += 1;
    }
    #[inline]
    pub(crate) fn node_read(&mut self) {
        self.counters.node_reads += 1;
    }
    #[inline]
    pub(crate) fn eval_step(&mut self) {
        self.counters.eval_steps += 1;
    }
    #[inline]
    pub(crate) fn env_probe(&mut self) {
        self.counters.env_probes += 1;
    }
    /// Bulk probe charge: the indexed environment (see [`crate::env`])
    /// computes how many probes the paper's linear scan *would* have
    /// performed and charges them in one add, keeping counters bit-identical
    /// to the faithful walk without paying for it.
    #[inline]
    pub(crate) fn env_probes_n(&mut self, n: u64) {
        self.counters.env_probes += n;
    }
    #[inline]
    pub(crate) fn symbol_cmp_bytes(&mut self, n: u64) {
        self.counters.symbol_cmp_bytes += n;
    }
    #[inline]
    pub(crate) fn arith_op(&mut self) {
        self.counters.arith_ops += 1;
    }
    #[inline]
    pub(crate) fn builtin_call(&mut self) {
        self.counters.builtin_calls += 1;
    }
    #[inline]
    pub(crate) fn form_apply(&mut self) {
        self.counters.form_applies += 1;
    }
    #[inline]
    pub(crate) fn output_bytes(&mut self, n: u64) {
        self.counters.output_bytes += n;
    }
    #[inline]
    pub(crate) fn number_format(&mut self) {
        self.counters.number_formats += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_isolates_a_phase() {
        let mut m = Meter::new();
        m.chars_scanned(10);
        m.node_alloc();
        let mid = m.snapshot();
        m.chars_scanned(5);
        m.eval_step();
        let d = m.snapshot().delta_since(&mid);
        assert_eq!(d.chars_scanned, 5);
        assert_eq!(d.eval_steps, 1);
        assert_eq!(d.nodes_alloc, 0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = Counters {
            arith_ops: 2,
            ..Default::default()
        };
        let b = Counters {
            arith_ops: 3,
            output_bytes: 7,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.arith_ops, 5);
        assert_eq!(a.output_bytes, 7);
    }

    #[test]
    fn total_sums_everything() {
        let c = Counters {
            chars_scanned: 1,
            eval_steps: 2,
            output_bytes: 3,
            ..Default::default()
        };
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn reset_zeroes() {
        let mut m = Meter::new();
        m.arith_op();
        m.reset();
        assert_eq!(m.snapshot(), Counters::default());
    }

    #[test]
    fn fuel_defaults_to_unlimited() {
        let m = Meter::new();
        assert!(!m.fuel_exhausted());
        assert_eq!(m.fuel_budget(), FUEL_UNLIMITED);
    }

    #[test]
    fn fuel_deadline_counts_eval_steps_from_arming() {
        let mut m = Meter::new();
        m.eval_step();
        m.arm_fuel(2);
        assert!(!m.fuel_exhausted());
        m.eval_step();
        assert!(!m.fuel_exhausted());
        m.eval_step();
        assert!(m.fuel_exhausted(), "deadline is relative to arming point");
        // Non-step charges never consume fuel.
        m.arm_fuel(1);
        m.arith_op();
        m.node_read();
        assert!(!m.fuel_exhausted());
    }

    #[test]
    fn reset_rearms_the_current_budget() {
        let mut m = Meter::new();
        m.arm_fuel(1);
        m.eval_step();
        assert!(m.fuel_exhausted());
        m.reset();
        assert!(!m.fuel_exhausted(), "reset re-arms from step zero");
        m.eval_step();
        assert!(m.fuel_exhausted());
    }
}
