//! Host-side I/O services for device code.
//!
//! The paper lists program-internal file I/O as a missing feature that
//! *"can be realized by using the buffer for exchanging messages between
//! host and device for this purpose and will be added in future
//! versions"*. This module is that future version's seam: the interpreter
//! (device side) calls a [`HostIo`] implementation provided by the runtime
//! (host side); the byte traffic is charged through the meter like any
//! other device↔host exchange.

use std::sync::Arc;

/// Host services available to the device: a minimal file API.
pub trait HostIo: Send + Sync {
    /// Reads a whole file; `Err(message)` when it does not exist or the
    /// host refuses.
    fn read_file(&self, path: &[u8]) -> Result<Vec<u8>, String>;
    /// Writes (creates or replaces) a whole file.
    fn write_file(&self, path: &[u8], data: &[u8]) -> Result<(), String>;
    /// `true` when the file exists.
    fn exists(&self, path: &[u8]) -> bool;
}

/// Cloneable, debuggable handle around a shared host-I/O implementation.
#[derive(Clone)]
pub struct HostIoHandle(pub Arc<dyn HostIo>);

impl core::fmt::Debug for HostIoHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("HostIoHandle(..)")
    }
}

impl HostIoHandle {
    /// Wraps an implementation.
    pub fn new(io: impl HostIo + 'static) -> Self {
        Self(Arc::new(io))
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// In-memory file map for unit tests.
    #[derive(Default)]
    pub struct MemIo {
        files: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
    }

    impl HostIo for MemIo {
        fn read_file(&self, path: &[u8]) -> Result<Vec<u8>, String> {
            self.files
                .lock()
                .unwrap()
                .get(path)
                .cloned()
                .ok_or_else(|| format!("no such file: {}", String::from_utf8_lossy(path)))
        }

        fn write_file(&self, path: &[u8], data: &[u8]) -> Result<(), String> {
            self.files
                .lock()
                .unwrap()
                .insert(path.to_vec(), data.to_vec());
            Ok(())
        }

        fn exists(&self, path: &[u8]) -> bool {
            self.files.lock().unwrap().contains_key(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::MemIo;
    use super::*;

    #[test]
    fn mem_io_roundtrip() {
        let io = MemIo::default();
        assert!(!io.exists(b"a.txt"));
        io.write_file(b"a.txt", b"hello").unwrap();
        assert!(io.exists(b"a.txt"));
        assert_eq!(io.read_file(b"a.txt").unwrap(), b"hello");
        assert!(io.read_file(b"missing").is_err());
    }

    #[test]
    fn handle_is_cloneable_and_shared() {
        let handle = HostIoHandle::new(MemIo::default());
        let other = handle.clone();
        handle.0.write_file(b"x", b"1").unwrap();
        assert_eq!(
            other.0.read_file(b"x").unwrap(),
            b"1",
            "clones share storage"
        );
        assert_eq!(format!("{handle:?}"), "HostIoHandle(..)");
    }
}
