//! The fixed-size node arena.
//!
//! Paper §III-A c: *"Nodes are stored in a large array that is created at
//! the beginning of the program. This array has a fixed length set during
//! the compilation of CuLi. ... Whenever a function asks for a new node to
//! store a value, the sequentially next free node of this array will be
//! returned. When the nodes are not needed anymore, they are marked as
//! free."*
//!
//! # Simulated cost vs. real data structure
//!
//! The C original finds "the sequentially next free node" by scanning — an
//! O(capacity) worst case once the array fragments. We keep the paper's
//! observable contract (fixed capacity, exhaustion is [`CuliError::ArenaFull`],
//! identical meter charges: the paper's model prices an allocation as one
//! `node_alloc`, not per slot probed) but implement it with an **intrusive
//! free-list**: every free slot stores the index of the next free slot, so
//! allocation and free are O(1) regardless of fragmentation. The list is
//! seeded in ascending order, which preserves the "sequential" allocation
//! pattern the paper describes for a fresh arena, and [`crate::gc`] rebuilds
//! it in ascending order during sweep so post-collection allocation stays
//! cache-friendly.

use crate::cost::Meter;
use crate::error::{CuliError, Result};
use crate::node::{Node, Payload};
use crate::types::NodeId;

/// Sentinel for "no next free slot".
const FREE_NONE: u32 = u32::MAX;

/// Fixed-capacity slot allocator for [`Node`]s.
#[derive(Debug, Clone)]
pub struct NodeArena {
    slots: Vec<Slot>,
    /// Head of the intrusive free-list ([`FREE_NONE`] when full).
    free_head: u32,
    /// Number of live (occupied) slots.
    live: usize,
    /// Highest number of simultaneously live slots ever observed.
    high_water: usize,
    /// One past the highest slot index ever allocated. Slots at or beyond
    /// this mark still carry their pristine ascending seed links, so the
    /// GC sweep only has to rebuild the free-list below it — collections
    /// cost O(high slot), not O(capacity) (a 1 Mi-slot arena no longer
    /// pays ~ms sweeps for a few-thousand-node session).
    high_slot: usize,
    /// Policy cap on live nodes (distinct from the physical capacity):
    /// allocation fails with [`CuliError::HeapLimitExceeded`] at this
    /// occupancy. `usize::MAX` (the default) disables the cap.
    node_limit: usize,
}

#[derive(Debug, Clone)]
enum Slot {
    /// Free slot, holding the index of the next free slot (the free-list
    /// link lives *inside* the unused storage, as the C original's array
    /// could).
    Free {
        next_free: u32,
    },
    Occupied(Node),
}

impl NodeArena {
    /// Creates an arena with `capacity` node slots.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity < FREE_NONE as usize,
            "arena capacity must fit the u32 free-list index space"
        );
        let slots = (0..capacity)
            .map(|i| Slot::Free {
                next_free: if i + 1 < capacity {
                    (i + 1) as u32
                } else {
                    FREE_NONE
                },
            })
            .collect();
        Self {
            slots,
            free_head: if capacity > 0 { 0 } else { FREE_NONE },
            live: 0,
            high_water: 0,
            high_slot: 0,
            node_limit: usize::MAX,
        }
    }

    /// Sets the live-node policy cap (see [`NodeArena::alloc`]). The
    /// interpreter applies [`crate::interp::InterpConfig::heap_limit`]
    /// here after boot, so builtin registration is never subject to it.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Total slot count (the compile-time array length in the C original).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Currently occupied slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak occupancy over the arena's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// One past the highest slot index ever allocated — the sweep bound
    /// (every live node id is below it; slots beyond it are untouched
    /// seed-state free slots).
    pub fn high_slot(&self) -> usize {
        self.high_slot
    }

    /// Allocates a node, returning its id. Pops the free-list head: O(1)
    /// even on a heavily fragmented arena (the seed implementation's
    /// wrapping linear scan degraded to O(capacity) there).
    pub fn alloc(&mut self, node: Node, meter: &mut Meter) -> Result<NodeId> {
        if self.live >= self.node_limit {
            return Err(CuliError::HeapLimitExceeded {
                limit: self.node_limit,
            });
        }
        let idx = self.free_head;
        if idx == FREE_NONE {
            return Err(CuliError::ArenaFull {
                capacity: self.slots.len(),
            });
        }
        let slot = &mut self.slots[idx as usize];
        let next = match slot {
            Slot::Free { next_free } => *next_free,
            Slot::Occupied(_) => unreachable!("occupied slot on the free list"),
        };
        *slot = Slot::Occupied(node);
        self.free_head = next;
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        self.high_slot = self.high_slot.max(idx as usize + 1);
        meter.node_alloc();
        Ok(NodeId::new(idx as usize))
    }

    /// Marks a single node free (pushes it on the free-list). The caller is
    /// responsible for making sure nothing still references it (see
    /// [`crate::gc`] for the safe path).
    pub fn free(&mut self, id: NodeId, meter: &mut Meter) {
        let slot = &mut self.slots[id.index()];
        if matches!(slot, Slot::Occupied(_)) {
            *slot = Slot::Free {
                next_free: self.free_head,
            };
            self.free_head = id.index() as u32;
            self.live -= 1;
            meter.node_freed();
        }
    }

    /// Frees every live slot whose bit is clear in `marked` (a word-packed
    /// bitmap, bit `i` of word `i / 64` for slot `i`) and rebuilds the
    /// free-list below the high-water slot in ascending order. Returns the
    /// number of slots freed.
    ///
    /// This is the GC sweep: one pass **bounded by the highest slot ever
    /// allocated**, no per-victim bookkeeping. Slots at or beyond
    /// [`NodeArena::high_slot`] were never allocated, so they still carry
    /// their pristine ascending seed links — the rebuilt list simply
    /// chains into them, making the sweep proportional to peak usage
    /// instead of capacity. Sweep frees are *not* metered — matching the
    /// original collector, which discarded its scratch meter — because the
    /// paper's cost model charges only mutator-driven node traffic.
    pub(crate) fn sweep_unmarked(&mut self, marked: &[u64]) -> usize {
        debug_assert!(marked.len() * 64 >= self.high_slot, "mark bitmap too small");
        let mut freed = 0usize;
        let mut head = if self.high_slot < self.slots.len() {
            self.high_slot as u32
        } else {
            FREE_NONE
        };
        for idx in (0..self.high_slot).rev() {
            let is_marked = marked[idx >> 6] & (1u64 << (idx & 63)) != 0;
            match &mut self.slots[idx] {
                Slot::Occupied(_) if !is_marked => {
                    self.slots[idx] = Slot::Free { next_free: head };
                    head = idx as u32;
                    freed += 1;
                }
                Slot::Occupied(_) => {}
                Slot::Free { next_free } => {
                    *next_free = head;
                    head = idx as u32;
                }
            }
        }
        self.free_head = head;
        self.live -= freed;
        freed
    }

    /// Immutable access. Panics on a freed slot — that is always an
    /// interpreter bug, not user error.
    pub fn get(&self, id: NodeId) -> &Node {
        match &self.slots[id.index()] {
            Slot::Occupied(n) => n,
            Slot::Free { .. } => panic!("use-after-free of node {id:?}"),
        }
    }

    /// Metered read: counts one node access then returns the node.
    pub fn read(&self, id: NodeId, meter: &mut Meter) -> &Node {
        meter.node_read();
        self.get(id)
    }

    /// `true` if the slot is currently occupied.
    pub fn is_live(&self, id: NodeId) -> bool {
        matches!(self.slots[id.index()], Slot::Occupied(_))
    }

    /// Internal mutation used only while *constructing* lists (the parser
    /// appends children by rewriting `next`/`last`). Nodes stay immutable
    /// once visible to evaluation, preserving the paper's no-side-effects
    /// rule.
    pub(crate) fn get_mut(&mut self, id: NodeId) -> &mut Node {
        match &mut self.slots[id.index()] {
            Slot::Occupied(n) => n,
            Slot::Free { .. } => panic!("use-after-free of node {id:?}"),
        }
    }

    /// Appends `child` to the list node `list`, maintaining the
    /// first/last pointers and sibling chain of paper Fig. 2.
    pub(crate) fn list_append(&mut self, list: NodeId, child: NodeId) {
        debug_assert!(self.get(child).next.is_none(), "child already linked");
        let (first, last) = match self.get(list).payload {
            Payload::List { first, last } => (first, last),
            _ => panic!("list_append on non-list {list:?}"),
        };
        match (first, last) {
            (None, None) => {
                self.get_mut(list).payload = Payload::List {
                    first: Some(child),
                    last: Some(child),
                };
            }
            (Some(f), Some(l)) => {
                self.get_mut(l).next = Some(child);
                self.get_mut(list).payload = Payload::List {
                    first: Some(f),
                    last: Some(child),
                };
            }
            _ => panic!("corrupt list payload on {list:?}"),
        }
    }

    /// Iterates the children of a list node.
    pub fn iter_list(&self, list: NodeId) -> ListIter<'_> {
        let cur = match self.get(list).payload {
            Payload::List { first, .. } => first,
            _ => None,
        };
        ListIter { arena: self, cur }
    }

    /// Collects the children of a list node into a vector. Convenience for
    /// cold builtins that index arguments; hot paths iterate the sibling
    /// chain via [`NodeArena::iter_list`] or reuse a scratch buffer from
    /// [`crate::interp::Interp`] instead of allocating.
    pub fn list_children(&self, list: NodeId) -> Vec<NodeId> {
        self.iter_list(list).collect()
    }

    /// Appends the children of a list node to `out` without allocating
    /// (beyond `out`'s own growth on first use).
    pub fn list_children_into(&self, list: NodeId, out: &mut Vec<NodeId>) {
        out.extend(self.iter_list(list));
    }

    /// Length of a list node.
    pub fn list_len(&self, list: NodeId) -> usize {
        self.iter_list(list).count()
    }

    /// Iterates over every live node id (diagnostics, GC).
    pub fn iter_live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(_) => Some(NodeId::new(i)),
            Slot::Free { .. } => None,
        })
    }

    /// Convenience for tests: allocate a chain of int nodes as a list.
    pub fn alloc_int_list(&mut self, values: &[i64], meter: &mut Meter) -> Result<NodeId> {
        let list = self.alloc(Node::empty_list(), meter)?;
        for &v in values {
            let child = self.alloc(Node::int(v), meter)?;
            self.list_append(list, child);
        }
        Ok(list)
    }
}

/// Iterator over a list node's children.
pub struct ListIter<'a> {
    arena: &'a NodeArena,
    cur: Option<NodeId>,
}

impl Iterator for ListIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.arena.get(id).next;
        Some(id)
    }
}

/// Occupancy statistics, exposed for the paper's "input size is limited by
/// node organization" discussion and for fragmentation diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total slots.
    pub capacity: usize,
    /// Live slots.
    pub live: usize,
    /// Peak live slots.
    pub high_water: usize,
}

impl NodeArena {
    /// Current occupancy statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            capacity: self.capacity(),
            live: self.live,
            high_water: self.high_water,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(cap: usize) -> (NodeArena, Meter) {
        (NodeArena::with_capacity(cap), Meter::new())
    }

    #[test]
    fn alloc_is_sequential() {
        let (mut a, mut m) = arena(8);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let n1 = a.alloc(Node::int(1), &mut m).unwrap();
        assert_eq!(n0.index(), 0);
        assert_eq!(n1.index(), 1);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let (mut a, mut m) = arena(2);
        a.alloc(Node::int(0), &mut m).unwrap();
        a.alloc(Node::int(1), &mut m).unwrap();
        assert_eq!(
            a.alloc(Node::int(2), &mut m),
            Err(CuliError::ArenaFull { capacity: 2 })
        );
    }

    #[test]
    fn freed_slots_are_reused() {
        let (mut a, mut m) = arena(2);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let _n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        let n2 = a.alloc(Node::int(2), &mut m).unwrap();
        assert_eq!(n2.index(), 0, "freed slot is immediately reusable");
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn fragmented_arena_allocs_in_constant_steps() {
        // Interleaved fragmentation: fill, free every other slot, then
        // re-allocate. Every freed slot must be handed out again (no leaks,
        // no premature ArenaFull) and exhaustion must land exactly at
        // capacity.
        let cap = 64;
        let (mut a, mut m) = arena(cap);
        let ids: Vec<NodeId> = (0..cap)
            .map(|i| a.alloc(Node::int(i as i64), &mut m).unwrap())
            .collect();
        let freed: Vec<NodeId> = ids.iter().copied().step_by(2).collect();
        for &id in &freed {
            a.free(id, &mut m);
        }
        assert_eq!(a.live(), cap / 2);
        let mut reused = Vec::new();
        for i in 0..cap / 2 {
            reused.push(a.alloc(Node::int(i as i64), &mut m).unwrap());
        }
        let mut freed_sorted: Vec<usize> = freed.iter().map(|id| id.index()).collect();
        let mut reused_sorted: Vec<usize> = reused.iter().map(|id| id.index()).collect();
        freed_sorted.sort_unstable();
        reused_sorted.sort_unstable();
        assert_eq!(
            freed_sorted, reused_sorted,
            "exactly the freed slots are reused"
        );
        assert_eq!(
            a.alloc(Node::int(0), &mut m),
            Err(CuliError::ArenaFull { capacity: cap }),
            "exhaustion at exact capacity"
        );
    }

    #[test]
    fn sweep_rebuilds_ascending_free_list() {
        let (mut a, mut m) = arena(8);
        let ids: Vec<NodeId> = (0..8)
            .map(|i| a.alloc(Node::int(i), &mut m).unwrap())
            .collect();
        // Keep slots 1 and 6 live, sweep the rest.
        let mut marked = vec![0u64; 1];
        for keep in [1usize, 6] {
            marked[0] |= 1 << keep;
        }
        let freed = a.sweep_unmarked(&marked);
        assert_eq!(freed, 6);
        assert_eq!(a.live(), 2);
        assert!(a.is_live(ids[1]) && a.is_live(ids[6]));
        // Ascending rebuild: the next allocations walk 0, 2, 3, …
        assert_eq!(a.alloc(Node::int(0), &mut m).unwrap().index(), 0);
        assert_eq!(a.alloc(Node::int(0), &mut m).unwrap().index(), 2);
        assert_eq!(a.alloc(Node::int(0), &mut m).unwrap().index(), 3);
    }

    #[test]
    fn bounded_sweep_preserves_untouched_tail() {
        // Only 4 of 1024 slots were ever allocated: the sweep must not
        // disturb the pristine tail, and every slot must remain reachable
        // through the free-list afterwards.
        let cap = 1024;
        let (mut a, mut m) = arena(cap);
        let ids: Vec<NodeId> = (0..4)
            .map(|i| a.alloc(Node::int(i as i64), &mut m).unwrap())
            .collect();
        assert_eq!(a.high_slot(), 4);
        let mut marked = vec![0u64; 1];
        marked[0] |= 1 << 1; // keep only slot 1
        assert_eq!(a.sweep_unmarked(&marked), 3);
        assert!(a.is_live(ids[1]));
        for _ in 0..cap - 1 {
            a.alloc(Node::int(0), &mut m).unwrap();
        }
        assert_eq!(
            a.alloc(Node::int(0), &mut m),
            Err(CuliError::ArenaFull { capacity: cap }),
            "exhaustion at exact capacity after a bounded sweep"
        );
    }

    #[test]
    fn high_slot_tracks_peak_index_not_live_count() {
        let (mut a, mut m) = arena(16);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        a.free(n1, &mut m);
        assert_eq!(a.live(), 0);
        assert_eq!(a.high_slot(), 2, "high slot is a watermark, not a count");
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    fn use_after_free_panics() {
        let (mut a, mut m) = arena(2);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        a.free(n0, &mut m);
        let _ = a.get(n0);
    }

    #[test]
    fn list_append_maintains_chain() {
        let (mut a, mut m) = arena(16);
        let list = a.alloc_int_list(&[10, 20, 30], &mut m).unwrap();
        let kids = a.list_children(list);
        assert_eq!(kids.len(), 3);
        let vals: Vec<i64> = kids
            .iter()
            .map(|&k| match a.get(k).payload {
                Payload::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![10, 20, 30]);
        // last pointer is the final element
        match a.get(list).payload {
            Payload::List { last: Some(l), .. } => assert_eq!(l, kids[2]),
            _ => panic!(),
        }
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let (mut a, mut m) = arena(4);
        let list = a.alloc(Node::empty_list(), &mut m).unwrap();
        assert_eq!(a.list_len(list), 0);
    }

    #[test]
    fn stats_and_high_water() {
        let (mut a, mut m) = arena(4);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let _n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        let s = a.stats();
        assert_eq!(s.capacity, 4);
        assert_eq!(s.live, 1);
        assert_eq!(s.high_water, 2);
    }

    #[test]
    fn meter_counts_allocs_and_frees() {
        let (mut a, mut m) = arena(4);
        let n = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n, &mut m);
        let c = m.snapshot();
        assert_eq!(c.nodes_alloc, 1);
        assert_eq!(c.nodes_freed, 1);
    }

    #[test]
    fn iter_live_lists_occupied_only() {
        let (mut a, mut m) = arena(4);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        let live: Vec<NodeId> = a.iter_live().collect();
        assert_eq!(live, vec![n1]);
    }

    #[test]
    fn node_limit_caps_live_occupancy_and_lifts_after_free() {
        let (mut a, mut m) = arena(8);
        a.set_node_limit(2);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        a.alloc(Node::int(1), &mut m).unwrap();
        assert_eq!(
            a.alloc(Node::int(2), &mut m),
            Err(CuliError::HeapLimitExceeded { limit: 2 }),
            "cap is on live nodes, not total allocations"
        );
        a.free(n0, &mut m);
        assert!(
            a.alloc(Node::int(3), &mut m).is_ok(),
            "freeing lifts the cap"
        );
    }

    #[test]
    fn zero_capacity_arena_is_always_full() {
        let (mut a, mut m) = arena(0);
        assert_eq!(
            a.alloc(Node::int(0), &mut m),
            Err(CuliError::ArenaFull { capacity: 0 })
        );
    }
}
