//! The fixed-size node arena.
//!
//! Paper §III-A c: *"Nodes are stored in a large array that is created at
//! the beginning of the program. This array has a fixed length set during
//! the compilation of CuLi. ... Whenever a function asks for a new node to
//! store a value, the sequentially next free node of this array will be
//! returned. When the nodes are not needed anymore, they are marked as
//! free."*
//!
//! We reproduce that allocator: a contiguous slot array, a sequential
//! cursor, free marks, and — because a long interactive session would
//! otherwise exhaust the array — a wrapping rescan that reuses freed slots.
//! Exhaustion is a real, reportable error ([`CuliError::ArenaFull`]), which
//! the paper names as the current input-size limitation.

use crate::cost::Meter;
use crate::error::{CuliError, Result};
use crate::node::{Node, Payload};
use crate::types::NodeId;

/// Fixed-capacity slot allocator for [`Node`]s.
#[derive(Debug, Clone)]
pub struct NodeArena {
    slots: Vec<Slot>,
    /// Next index the sequential scan starts from.
    cursor: usize,
    /// Number of live (occupied) slots.
    live: usize,
    /// Highest number of simultaneously live slots ever observed.
    high_water: usize,
}

#[derive(Debug, Clone)]
enum Slot {
    Free,
    Occupied(Node),
}

impl NodeArena {
    /// Creates an arena with `capacity` node slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { slots: vec![Slot::Free; capacity], cursor: 0, live: 0, high_water: 0 }
    }

    /// Total slot count (the compile-time array length in the C original).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Currently occupied slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak occupancy over the arena's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Allocates a node, returning its id. Scans sequentially from the
    /// cursor (wrapping once) for a free slot, as the original allocator
    /// hands out "the sequentially next free node".
    pub fn alloc(&mut self, node: Node, meter: &mut Meter) -> Result<NodeId> {
        let cap = self.slots.len();
        if self.live >= cap {
            return Err(CuliError::ArenaFull { capacity: cap });
        }
        let mut idx = self.cursor;
        for _ in 0..cap {
            if matches!(self.slots[idx], Slot::Free) {
                self.slots[idx] = Slot::Occupied(node);
                self.cursor = (idx + 1) % cap;
                self.live += 1;
                self.high_water = self.high_water.max(self.live);
                meter.node_alloc();
                return Ok(NodeId::new(idx));
            }
            idx = (idx + 1) % cap;
        }
        Err(CuliError::ArenaFull { capacity: cap })
    }

    /// Marks a single node free. The caller is responsible for making sure
    /// nothing still references it (see [`crate::gc`] for the safe path).
    pub fn free(&mut self, id: NodeId, meter: &mut Meter) {
        let slot = &mut self.slots[id.index()];
        if matches!(slot, Slot::Occupied(_)) {
            *slot = Slot::Free;
            self.live -= 1;
            meter.node_freed();
        }
    }

    /// Immutable access. Panics on a freed slot — that is always an
    /// interpreter bug, not user error.
    pub fn get(&self, id: NodeId) -> &Node {
        match &self.slots[id.index()] {
            Slot::Occupied(n) => n,
            Slot::Free => panic!("use-after-free of node {id:?}"),
        }
    }

    /// Metered read: counts one node access then returns the node.
    pub fn read(&self, id: NodeId, meter: &mut Meter) -> &Node {
        meter.node_read();
        self.get(id)
    }

    /// `true` if the slot is currently occupied.
    pub fn is_live(&self, id: NodeId) -> bool {
        matches!(self.slots[id.index()], Slot::Occupied(_))
    }

    /// Internal mutation used only while *constructing* lists (the parser
    /// appends children by rewriting `next`/`last`). Nodes stay immutable
    /// once visible to evaluation, preserving the paper's no-side-effects
    /// rule.
    pub(crate) fn get_mut(&mut self, id: NodeId) -> &mut Node {
        match &mut self.slots[id.index()] {
            Slot::Occupied(n) => n,
            Slot::Free => panic!("use-after-free of node {id:?}"),
        }
    }

    /// Appends `child` to the list node `list`, maintaining the
    /// first/last pointers and sibling chain of paper Fig. 2.
    pub(crate) fn list_append(&mut self, list: NodeId, child: NodeId) {
        debug_assert!(self.get(child).next.is_none(), "child already linked");
        let (first, last) = match self.get(list).payload {
            Payload::List { first, last } => (first, last),
            _ => panic!("list_append on non-list {list:?}"),
        };
        match (first, last) {
            (None, None) => {
                self.get_mut(list).payload = Payload::List { first: Some(child), last: Some(child) };
            }
            (Some(f), Some(l)) => {
                self.get_mut(l).next = Some(child);
                self.get_mut(list).payload = Payload::List { first: Some(f), last: Some(child) };
            }
            _ => panic!("corrupt list payload on {list:?}"),
        }
    }

    /// Iterates the children of a list node.
    pub fn iter_list(&self, list: NodeId) -> ListIter<'_> {
        let cur = match self.get(list).payload {
            Payload::List { first, .. } => first,
            _ => None,
        };
        ListIter { arena: self, cur }
    }

    /// Collects the children of a list node into a vector (convenience for
    /// builtins that index arguments).
    pub fn list_children(&self, list: NodeId) -> Vec<NodeId> {
        self.iter_list(list).collect()
    }

    /// Length of a list node.
    pub fn list_len(&self, list: NodeId) -> usize {
        self.iter_list(list).count()
    }

    /// Iterates over every live node id (diagnostics, GC).
    pub fn iter_live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(_) => Some(NodeId::new(i)),
            Slot::Free => None,
        })
    }

    /// Convenience for tests: allocate a chain of int nodes as a list.
    pub fn alloc_int_list(&mut self, values: &[i64], meter: &mut Meter) -> Result<NodeId> {
        let list = self.alloc(Node::empty_list(), meter)?;
        for &v in values {
            let child = self.alloc(Node::int(v), meter)?;
            self.list_append(list, child);
        }
        Ok(list)
    }
}

/// Iterator over a list node's children.
pub struct ListIter<'a> {
    arena: &'a NodeArena,
    cur: Option<NodeId>,
}

impl Iterator for ListIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.cur?;
        self.cur = self.arena.get(id).next;
        Some(id)
    }
}

/// Occupancy statistics, exposed for the paper's "input size is limited by
/// node organization" discussion and for fragmentation diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total slots.
    pub capacity: usize,
    /// Live slots.
    pub live: usize,
    /// Peak live slots.
    pub high_water: usize,
}

impl NodeArena {
    /// Current occupancy statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats { capacity: self.capacity(), live: self.live, high_water: self.high_water }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn arena(cap: usize) -> (NodeArena, Meter) {
        (NodeArena::with_capacity(cap), Meter::new())
    }

    #[test]
    fn alloc_is_sequential() {
        let (mut a, mut m) = arena(8);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let n1 = a.alloc(Node::int(1), &mut m).unwrap();
        assert_eq!(n0.index(), 0);
        assert_eq!(n1.index(), 1);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let (mut a, mut m) = arena(2);
        a.alloc(Node::int(0), &mut m).unwrap();
        a.alloc(Node::int(1), &mut m).unwrap();
        assert_eq!(
            a.alloc(Node::int(2), &mut m),
            Err(CuliError::ArenaFull { capacity: 2 })
        );
    }

    #[test]
    fn freed_slots_are_reused_after_wraparound() {
        let (mut a, mut m) = arena(2);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let _n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        let n2 = a.alloc(Node::int(2), &mut m).unwrap();
        assert_eq!(n2.index(), 0, "scan wraps to the freed slot");
        assert_eq!(a.live(), 2);
    }

    #[test]
    #[should_panic(expected = "use-after-free")]
    fn use_after_free_panics() {
        let (mut a, mut m) = arena(2);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        a.free(n0, &mut m);
        let _ = a.get(n0);
    }

    #[test]
    fn list_append_maintains_chain() {
        let (mut a, mut m) = arena(16);
        let list = a.alloc_int_list(&[10, 20, 30], &mut m).unwrap();
        let kids = a.list_children(list);
        assert_eq!(kids.len(), 3);
        let vals: Vec<i64> = kids
            .iter()
            .map(|&k| match a.get(k).payload {
                Payload::Int(v) => v,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![10, 20, 30]);
        // last pointer is the final element
        match a.get(list).payload {
            Payload::List { last: Some(l), .. } => assert_eq!(l, kids[2]),
            _ => panic!(),
        }
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let (mut a, mut m) = arena(4);
        let list = a.alloc(Node::empty_list(), &mut m).unwrap();
        assert_eq!(a.list_len(list), 0);
    }

    #[test]
    fn stats_and_high_water() {
        let (mut a, mut m) = arena(4);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let _n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        let s = a.stats();
        assert_eq!(s.capacity, 4);
        assert_eq!(s.live, 1);
        assert_eq!(s.high_water, 2);
    }

    #[test]
    fn meter_counts_allocs_and_frees() {
        let (mut a, mut m) = arena(4);
        let n = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n, &mut m);
        let c = m.snapshot();
        assert_eq!(c.nodes_alloc, 1);
        assert_eq!(c.nodes_freed, 1);
    }

    #[test]
    fn iter_live_lists_occupied_only() {
        let (mut a, mut m) = arena(4);
        let n0 = a.alloc(Node::int(0), &mut m).unwrap();
        let n1 = a.alloc(Node::int(1), &mut m).unwrap();
        a.free(n0, &mut m);
        let live: Vec<NodeId> = a.iter_live().collect();
        assert_eq!(live, vec![n1]);
    }
}
