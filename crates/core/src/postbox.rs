//! Postbox-style flat encoding of node trees, environment deltas and
//! environment chains (paper §III-D).
//!
//! The paper's `|||` choreography never ships pointer graphs between the
//! master and its workers: jobs travel through a compact postbox as flat,
//! contiguous buffers. This module is the CPU-side analogue for the
//! real-threads backend in `culi-runtime`: instead of cloning a whole
//! interpreter per worker per section (PR 1's fork-per-section design), a
//! persistent worker receives
//!
//! 1. a [`SyncPacket`] — the master's [`crate::env`] sync-log records since
//!    the worker's last epoch, so the warm fork replays only *new* global
//!    definitions — **or** an [`EnvSnapshot`], a compacted dump of the
//!    whole persistent environment set, whenever incremental replay would
//!    be larger than resynchronizing from scratch (see below);
//! 2. a [`ChainPacket`] — the transient environment chain between the
//!    `|||` expression and the persistent set (dynamic scoping means job
//!    bodies may resolve symbols bound by enclosing `let`s and form
//!    parameters);
//! 3. a [`FlatTree`] batch of job expressions,
//!
//! and answers with a [`FlatTree`] batch of result values. All four are
//! plain `Vec`-backed buffers that the pool recycles across sections, so a
//! warm section performs **zero steady-state heap allocations** for
//! message traffic — the postbox buffer-reuse discipline. One oversized
//! section must not pin its high-water capacity forever, so every packet
//! supports [`FlatTree::shrink_to_budget`]-style capacity capping (the
//! pool applies it when buffers return to the pool) and reports
//! [`FlatTree::byte_capacity`] for diagnostics.
//!
//! # Snapshot-resync vs. incremental replay
//!
//! A [`SyncPacket`] grows with the number of mutations since the
//! replica's epoch; an [`EnvSnapshot`] grows with the number of *live*
//! bindings. A master that `setq`s in a hot loop between sections, or a
//! seat that sat cold through thousands of definitions, makes the replay
//! window arbitrarily larger than the environment itself — the dispatcher
//! compares the two record counts and ships whichever is smaller, which
//! bounds sync traffic by the live environment size regardless of define
//! volume. A snapshot is also the only *faithful* repair once log
//! compaction has dropped records the replica never saw
//! ([`crate::env::EnvArena::sync_replay_faithful_since`]), and the only
//! repair at all for a replica whose own jobs mutated persistent state
//! (its structure has diverged from every epoch of the master's log) —
//! both previously forced a whole-interpreter re-fork.
//!
//! # Wire format
//!
//! A tree is a preorder word stream: one tag word per node, then
//! payload words (`i64`/`f64` as two words, text as an index into a
//! shared span-table-over-byte-heap (`TextHeap`), lists as a child
//! count followed by the encoded children, forms/macros as two nested
//! trees). Builtin functions travel
//! as registry ids — every replica clones the master's registry, so ids
//! are stable. Text travels as raw bytes and is re-interned on decode,
//! which keeps `eq`'s interned-id fast path working inside each replica.

use crate::cost::Meter;
use crate::env::SyncKind;
use crate::error::{CuliError, Result};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId, StrId};

const TAG_NIL: u32 = 0;
const TAG_TRUE: u32 = 1;
const TAG_INT: u32 = 2;
const TAG_FLOAT: u32 = 3;
const TAG_STR: u32 = 4;
const TAG_SYMBOL: u32 = 5;
const TAG_FUNCTION: u32 = 6;
const TAG_LIST: u32 = 7;
const TAG_EXPRESSION: u32 = 8;
const TAG_FORM: u32 = 9;
const TAG_MACRO: u32 = 10;

/// A shared `(offset, len)`-span table over one byte heap: the single
/// implementation of flat text storage used by every packet type (tree
/// nodes, sync symbols, chain symbols). Entry `i` is retrieved with a
/// bounds-checked [`TextHeap::get`], so a corrupt span surfaces as an
/// internal error instead of a panic.
#[derive(Debug, Clone, Default)]
struct TextHeap {
    spans: Vec<(u32, u32)>,
    bytes: Vec<u8>,
}

impl TextHeap {
    fn clear(&mut self) {
        self.spans.clear();
        self.bytes.clear();
    }

    /// Appends `text`, returning its entry index.
    fn push(&mut self, text: &[u8]) -> u32 {
        let idx = self.spans.len() as u32;
        self.spans
            .push((self.bytes.len() as u32, text.len() as u32));
        self.bytes.extend_from_slice(text);
        idx
    }

    fn get(&self, i: usize) -> Result<&[u8]> {
        let &(off, len) = self
            .spans
            .get(i)
            .ok_or(CuliError::Internal("text heap entry out of range"))?;
        self.bytes
            .get(off as usize..off as usize + len as usize)
            .ok_or(CuliError::Internal("text heap span out of range"))
    }

    fn byte_size(&self) -> usize {
        self.bytes.len() + self.spans.len() * 8
    }

    fn byte_capacity(&self) -> usize {
        self.bytes.capacity() + self.spans.capacity() * 8
    }

    /// Caps retained capacity at roughly `budget` bytes (split between the
    /// span table and the byte heap).
    fn shrink_to_budget(&mut self, budget: usize) {
        self.spans.shrink_to(budget / 16);
        self.bytes.shrink_to(budget / 2);
    }

    /// Overwrites `self` with `other`'s contents, reusing allocations.
    fn copy_from(&mut self, other: &TextHeap) {
        self.spans.clone_from(&other.spans);
        self.bytes.clone_from(&other.bytes);
    }
}

/// A batch of node trees in flat postbox encoding. Buffers grow on demand
/// and are reused across batches via [`FlatTree::clear`].
#[derive(Debug, Clone, Default)]
pub struct FlatTree {
    /// Preorder word stream of all encoded trees.
    words: Vec<u32>,
    /// String/symbol text entries referenced by index from `words`.
    text: TextHeap,
    /// Word offset where each tree starts.
    starts: Vec<u32>,
}

impl FlatTree {
    /// Empties the batch, keeping all buffer capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.text.clear();
        self.starts.clear();
    }

    /// Number of trees in the batch.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` when no tree has been encoded.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Encoded size in bytes (diagnostics; the postbox analogue of the
    /// paper's job-buffer occupancy).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 4 + self.text.byte_size() + self.starts.len() * 4
    }

    /// Bytes of heap capacity currently retained by the buffers (the
    /// quantity the pool's shrink policy bounds).
    pub fn byte_capacity(&self) -> usize {
        self.words.capacity() * 4 + self.text.byte_capacity() + self.starts.capacity() * 4
    }

    /// Caps retained capacity at roughly `budget` bytes so one oversized
    /// batch does not pin its high-water allocation for the buffer's
    /// lifetime. Contents are preserved (`Vec::shrink_to` never drops
    /// below the current length).
    pub fn shrink_to_budget(&mut self, budget: usize) {
        self.words.shrink_to(budget / 8);
        self.starts.shrink_to(budget / 16);
        self.text.shrink_to_budget(budget / 4);
    }

    /// Overwrites `self` with `other`'s contents, reusing allocations
    /// (unlike the derived `Clone`, no buffer is reallocated when
    /// capacity suffices).
    pub fn copy_from(&mut self, other: &FlatTree) {
        self.words.clone_from(&other.words);
        self.starts.clone_from(&other.starts);
        self.text.copy_from(&other.text);
    }

    /// Appends the tree rooted at `root` to the batch.
    pub fn push_tree(&mut self, interp: &Interp, root: NodeId) {
        self.starts.push(self.words.len() as u32);
        self.encode_node(interp, root, 0);
    }

    fn push_text(&mut self, bytes: &[u8]) {
        let idx = self.text.push(bytes);
        self.words.push(idx);
    }

    fn encode_node(&mut self, interp: &Interp, id: NodeId, depth: usize) {
        // Structural recursion over an acyclic arena tree; mirror the
        // printer's runaway guard.
        debug_assert!(depth < 100_000, "postbox encode recursion runaway");
        let n = interp.arena.get(id);
        match (n.ty, n.payload) {
            (NodeType::Nil, _) => self.words.push(TAG_NIL),
            (NodeType::True, _) => self.words.push(TAG_TRUE),
            (NodeType::Int, Payload::Int(v)) => {
                self.words.push(TAG_INT);
                self.push_u64(v as u64);
            }
            (NodeType::Float, Payload::Float(v)) => {
                self.words.push(TAG_FLOAT);
                self.push_u64(v.to_bits());
            }
            (NodeType::Str, Payload::Text(s)) => {
                self.words.push(TAG_STR);
                self.push_text(interp.strings.get(s));
            }
            (NodeType::Symbol, Payload::Text(s)) => {
                self.words.push(TAG_SYMBOL);
                self.push_text(interp.strings.get(s));
            }
            (NodeType::Function, Payload::Builtin(b)) => {
                self.words.push(TAG_FUNCTION);
                self.words.push(b.index() as u32);
            }
            (NodeType::List | NodeType::Expression, Payload::List { first, .. }) => {
                self.words.push(if n.ty == NodeType::List {
                    TAG_LIST
                } else {
                    TAG_EXPRESSION
                });
                // Single walk: reserve the count word, encode the sibling
                // chain, patch the count in afterwards.
                let count_at = self.words.len();
                self.words.push(0);
                let mut count = 0u32;
                let mut cur = first;
                while let Some(kid) = cur {
                    self.encode_node(interp, kid, depth + 1);
                    count += 1;
                    cur = interp.arena.get(kid).next;
                }
                self.words[count_at] = count;
            }
            (NodeType::Form | NodeType::Macro, Payload::Form { params, body }) => {
                self.words.push(if n.ty == NodeType::Form {
                    TAG_FORM
                } else {
                    TAG_MACRO
                });
                self.encode_node(interp, params, depth + 1);
                self.encode_node(interp, body, depth + 1);
            }
            _ => unreachable!("node type/payload mismatch in postbox encode"),
        }
    }

    fn push_u64(&mut self, v: u64) {
        self.words.push(v as u32);
        self.words.push((v >> 32) as u32);
    }

    /// Decodes tree `i` of the batch into `interp`'s arena, re-interning
    /// text, and returns the new root.
    pub fn decode(&self, i: usize, interp: &mut Interp) -> Result<NodeId> {
        let mut pos = self.starts[i] as usize;
        self.decode_node(interp, &mut pos)
    }

    fn word(&self, pos: &mut usize) -> Result<u32> {
        let w = self
            .words
            .get(*pos)
            .copied()
            .ok_or(CuliError::Internal("truncated postbox tree"))?;
        *pos += 1;
        Ok(w)
    }

    fn read_u64(&self, pos: &mut usize) -> Result<u64> {
        let lo = self.word(pos)? as u64;
        let hi = self.word(pos)? as u64;
        Ok(lo | (hi << 32))
    }

    fn decode_node(&self, interp: &mut Interp, pos: &mut usize) -> Result<NodeId> {
        match self.word(pos)? {
            TAG_NIL => interp.alloc(Node::nil()),
            TAG_TRUE => interp.alloc(Node::truth()),
            TAG_INT => {
                let v = self.read_u64(pos)? as i64;
                interp.alloc(Node::int(v))
            }
            TAG_FLOAT => {
                let v = f64::from_bits(self.read_u64(pos)?);
                interp.alloc(Node::float(v))
            }
            TAG_STR => {
                let sid = self.intern_span(interp, pos)?;
                interp.alloc(Node::string(sid))
            }
            TAG_SYMBOL => {
                let sid = self.intern_span(interp, pos)?;
                interp.alloc(Node::symbol(sid))
            }
            TAG_FUNCTION => {
                let id = self.word(pos)? as usize;
                interp.alloc(Node::function(crate::types::BuiltinId::new(id)))
            }
            tag @ (TAG_LIST | TAG_EXPRESSION) => {
                let ty = if tag == TAG_LIST {
                    NodeType::List
                } else {
                    NodeType::Expression
                };
                let count = self.word(pos)?;
                let list = interp.alloc(Node::new(
                    ty,
                    Payload::List {
                        first: None,
                        last: None,
                    },
                ))?;
                for _ in 0..count {
                    let kid = self.decode_node(interp, pos)?;
                    interp.arena.list_append(list, kid);
                }
                Ok(list)
            }
            tag @ (TAG_FORM | TAG_MACRO) => {
                let ty = if tag == TAG_FORM {
                    NodeType::Form
                } else {
                    NodeType::Macro
                };
                let params = self.decode_node(interp, pos)?;
                let body = self.decode_node(interp, pos)?;
                interp.alloc(Node::new(ty, Payload::Form { params, body }))
            }
            _ => Err(CuliError::Internal("unknown postbox tree tag")),
        }
    }

    fn intern_span(&self, interp: &mut Interp, pos: &mut usize) -> Result<StrId> {
        let idx = self.word(pos)? as usize;
        let bytes = self.text.get(idx)?;
        Ok(interp.strings.intern(bytes))
    }

    /// Splices a pre-encoded tree into the batch, rebasing its text
    /// references into this batch's heap. The resulting buffer is
    /// byte-identical to [`FlatTree::push_tree`] of the template's source
    /// tree (templates keep one text entry per occurrence, exactly like a
    /// fresh encode), so workers cannot tell a spliced job from an
    /// encoded one. This is the stamp step of the cache layer's staged-run
    /// template tier.
    pub fn push_template(&mut self, t: &TreeTemplate) {
        self.starts.push(self.words.len() as u32);
        let base = self.words.len();
        self.words.extend_from_slice(&t.words);
        for (i, &pos) in t.text_ref_positions.iter().enumerate() {
            let idx = self.text.push(&t.texts[i]);
            self.words[base + pos as usize] = idx;
        }
    }

    /// Snapshots the most recently pushed tree as a reusable
    /// [`TreeTemplate`] — the capture step of the cache's template tier.
    /// Copying the words [`FlatTree::push_tree`] just wrote is much
    /// cheaper than [`TreeTemplate::from_tree`]'s second arena walk into
    /// a scratch buffer, and yields the identical template.
    pub fn template_of_last(&self) -> TreeTemplate {
        let start = *self.starts.last().expect("no tree pushed") as usize;
        let mut t = TreeTemplate {
            words: self.words[start..].to_vec(),
            texts: Vec::new(),
            text_ref_positions: Vec::new(),
        };
        let mut pos = 0usize;
        scan_text_refs(&t.words, &mut pos, &mut t.text_ref_positions);
        for &p in &t.text_ref_positions {
            let idx = t.words[p as usize] as usize;
            t.texts
                .push(self.text.get(idx).expect("own encode").to_vec());
        }
        t
    }
}

/// One tree pre-encoded in postbox wire format, detached from any batch:
/// the words plus the text bytes its `STR`/`SYMBOL` words reference, in
/// occurrence order. Build once per distinct job shape
/// ([`TreeTemplate::from_tree`]), splice into dispatch buffers many times
/// ([`FlatTree::push_template`]) without re-walking the arena.
#[derive(Debug, Clone, Default)]
pub struct TreeTemplate {
    /// The encoded word stream; text-reference operands hold
    /// occurrence-relative indices until splice time.
    words: Vec<u32>,
    /// Referenced text bytes, one entry per occurrence (mirroring
    /// [`FlatTree::push_tree`], which never dedupes).
    texts: Vec<Vec<u8>>,
    /// Word positions (relative to the template start) holding text
    /// references, in occurrence order.
    text_ref_positions: Vec<u32>,
}

impl TreeTemplate {
    /// Encodes the tree rooted at `root` as a reusable template.
    /// Unmetered, exactly like the dispatch encode it stands in for.
    pub fn from_tree(interp: &Interp, root: NodeId) -> Self {
        let mut scratch = FlatTree::default();
        scratch.push_tree(interp, root);
        let mut t = Self {
            words: scratch.words,
            texts: Vec::new(),
            text_ref_positions: Vec::new(),
        };
        let mut pos = 0usize;
        scan_text_refs(&t.words, &mut pos, &mut t.text_ref_positions);
        for &p in &t.text_ref_positions {
            let idx = t.words[p as usize] as usize;
            t.texts
                .push(scratch.text.get(idx).expect("own encode").to_vec());
        }
        t
    }

    /// Heap bytes this template retains (for cache byte budgets).
    pub fn retained_bytes(&self) -> usize {
        self.words.len() * 4
            + self.text_ref_positions.len() * 4
            + self.texts.iter().map(|t| t.len() + 24).sum::<usize>()
    }
}

/// Walks one encoded tree's word grammar, collecting the positions of
/// text-reference operands.
fn scan_text_refs(words: &[u32], pos: &mut usize, out: &mut Vec<u32>) {
    let tag = words[*pos];
    *pos += 1;
    match tag {
        TAG_NIL | TAG_TRUE => {}
        TAG_INT | TAG_FLOAT => *pos += 2,
        TAG_STR | TAG_SYMBOL => {
            out.push(*pos as u32);
            *pos += 1;
        }
        TAG_FUNCTION => *pos += 1,
        TAG_LIST | TAG_EXPRESSION => {
            let count = words[*pos];
            *pos += 1;
            for _ in 0..count {
                scan_text_refs(words, pos, out);
            }
        }
        TAG_FORM | TAG_MACRO => {
            scan_text_refs(words, pos, out);
            scan_text_refs(words, pos, out);
        }
        _ => unreachable!("unknown tag in own postbox encode"),
    }
}

/// A batch of environment-mutation records in flat encoding: the
/// incremental synchronization stream for warm worker forks. Struct-of-
/// arrays layout, every field reused across sections.
#[derive(Debug, Clone, Default)]
pub struct SyncPacket {
    /// 0 = define, 1 = set, parallel to `values` trees.
    kinds: Vec<u8>,
    /// Mutated environment indices (persistent, stable across replicas).
    envs: Vec<u32>,
    /// Bound symbols' names, entry `i` for record `i`.
    syms: TextHeap,
    /// One encoded value tree per record.
    values: FlatTree,
}

impl SyncPacket {
    /// Number of records in the packet.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` when there is nothing to replay.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Empties the packet, keeping capacity.
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.envs.clear();
        self.syms.clear();
        self.values.clear();
    }

    /// Encoded size in bytes (diagnostics and the snapshot-vs-replay
    /// decision's tie-breaker).
    pub fn byte_size(&self) -> usize {
        self.kinds.len() + self.envs.len() * 4 + self.syms.byte_size() + self.values.byte_size()
    }

    /// Bytes of heap capacity currently retained.
    pub fn byte_capacity(&self) -> usize {
        self.kinds.capacity()
            + self.envs.capacity() * 4
            + self.syms.byte_capacity()
            + self.values.byte_capacity()
    }

    /// Caps retained capacity at roughly `budget` bytes.
    pub fn shrink_to_budget(&mut self, budget: usize) {
        self.kinds.shrink_to(budget / 16);
        self.envs.shrink_to(budget / 16);
        self.syms.shrink_to_budget(budget / 4);
        self.values.shrink_to_budget(budget / 2);
    }

    /// Re-encodes the packet as every master mutation stamped at `epoch`
    /// or later (see [`crate::env::EnvArena::sync_records_since`]).
    pub fn encode_since(&mut self, interp: &Interp, epoch: u64) {
        self.kinds.clear();
        self.envs.clear();
        self.syms.clear();
        self.values.clear();
        for r in interp.envs.sync_records_since(epoch) {
            self.kinds.push(match r.kind {
                SyncKind::Define => 0,
                SyncKind::Set => 1,
            });
            self.envs.push(r.env.index() as u32);
            self.syms.push(interp.strings.get(r.sym));
            self.values.push_tree(interp, r.value);
        }
    }

    /// Replays the packet into a replica: defines prepend, sets overwrite
    /// the visible binding (falling back to a define when the replica
    /// never saw the original definition — log compaction can drop it).
    pub fn apply(&self, interp: &mut Interp) -> Result<()> {
        for i in 0..self.kinds.len() {
            let sym = interp.strings.intern(self.syms.get(i)?);
            let value = self.values.decode(i, interp)?;
            let env = EnvId::new(self.envs[i] as usize);
            let applied = if self.kinds[i] == 1 {
                let mut scratch = Meter::new();
                interp
                    .envs
                    .set_nearest(env, sym, value, &interp.strings, &mut scratch)
            } else {
                false
            };
            if !applied {
                interp.envs.define(env, sym, value, &interp.strings);
            }
        }
        Ok(())
    }
}

/// A compacted whole-environment snapshot of the logged (persistent)
/// environment set: every live binding of every logged environment,
/// oldest first, in flat postbox encoding. Applying it *rebuilds* a
/// replica's persistent environments from scratch, reproducing the
/// master's binding-list structure exactly — shadowed bindings, order and
/// name lengths included — so paper-model lookup charges inside the
/// replica stay bit-identical to the master's. See the module docs for
/// when the dispatcher prefers this over incremental [`SyncPacket`]
/// replay.
#[derive(Debug, Clone, Default)]
pub struct EnvSnapshot {
    /// Live binding count per logged environment, environment 0 first.
    env_lens: Vec<u32>,
    /// Binding names, oldest binding first within each environment.
    syms: TextHeap,
    /// One encoded value tree per binding.
    values: FlatTree,
    /// Reused walk scratch (newest-first binding collection).
    bind_scratch: Vec<(StrId, NodeId)>,
}

impl EnvSnapshot {
    /// Number of binding records in the snapshot.
    pub fn record_count(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.env_lens.is_empty()
    }

    /// Empties the snapshot, keeping capacity.
    pub fn clear(&mut self) {
        self.env_lens.clear();
        self.syms.clear();
        self.values.clear();
    }

    /// Encoded size in bytes.
    pub fn byte_size(&self) -> usize {
        self.env_lens.len() * 4 + self.syms.byte_size() + self.values.byte_size()
    }

    /// Bytes of heap capacity currently retained.
    pub fn byte_capacity(&self) -> usize {
        self.env_lens.capacity() * 4
            + self.syms.byte_capacity()
            + self.values.byte_capacity()
            + self.bind_scratch.capacity() * 16
    }

    /// Caps retained capacity at roughly `budget` bytes.
    pub fn shrink_to_budget(&mut self, budget: usize) {
        self.env_lens.shrink_to(budget / 16);
        self.syms.shrink_to_budget(budget / 4);
        self.values.shrink_to_budget(budget / 2);
        self.bind_scratch.shrink_to(budget / 16);
    }

    /// Overwrites `self` with `other`'s encoded contents, reusing
    /// allocations — the dispatcher encodes one snapshot per dispatch
    /// and copies it into every seat's message.
    pub fn copy_from(&mut self, other: &EnvSnapshot) {
        self.env_lens.clone_from(&other.env_lens);
        self.syms.copy_from(&other.syms);
        self.values.copy_from(&other.values);
    }

    /// Encodes every live binding of `interp`'s logged environments,
    /// oldest binding first (replaying defines in that order reproduces
    /// the original list structure).
    pub fn encode(&mut self, interp: &Interp) {
        self.clear();
        for e in 0..interp.envs.logged_env_count() {
            let env = EnvId::new(e);
            self.bind_scratch.clear();
            self.bind_scratch.extend(interp.envs.local_bindings(env));
            self.env_lens.push(self.bind_scratch.len() as u32);
            for j in (0..self.bind_scratch.len()).rev() {
                let (sym, value) = self.bind_scratch[j];
                self.syms.push(interp.strings.get(sym));
                self.values.push_tree(interp, value);
            }
        }
    }

    /// Rebuilds the replica's logged environments from the snapshot:
    /// every logged environment is cleared and its bindings redefined in
    /// original order. The replica must share the master's lineage (same
    /// logged-environment count); anything else is a protocol error.
    pub fn apply(&self, interp: &mut Interp) -> Result<()> {
        if self.env_lens.len() != interp.envs.logged_env_count() {
            return Err(CuliError::Internal(
                "env snapshot does not match the replica's persistent set",
            ));
        }
        let mut k = 0usize;
        for (e, &len) in self.env_lens.iter().enumerate() {
            let env = EnvId::new(e);
            interp.envs.reset_env_bindings(env);
            for _ in 0..len {
                let sym = interp.strings.intern(self.syms.get(k)?);
                let value = self.values.decode(k, interp)?;
                interp.envs.define(env, sym, value, &interp.strings);
                k += 1;
            }
        }
        Ok(())
    }
}

/// The transient environment chain between a `|||` expression and the
/// persistent set, flattened for replay inside a worker. Dynamic scoping
/// means a job's form body may resolve symbols bound by enclosing `let`s
/// or form parameters — the worker rebuilds exactly that chain on top of
/// its own persistent environments before evaluating its jobs.
#[derive(Debug, Clone, Default)]
pub struct ChainPacket {
    /// Binding count per chain environment, outermost first.
    env_lens: Vec<u32>,
    /// Binding names, oldest binding first within each environment
    /// (replaying defines in that order reproduces the original
    /// shadowing).
    syms: TextHeap,
    /// One encoded value tree per binding.
    values: FlatTree,
    /// Index of the persistent environment the chain hangs from.
    anchor: u32,
    /// Reused walk scratch (newest-first binding collection).
    bind_scratch: Vec<(StrId, NodeId)>,
    /// Reused walk scratch (innermost-first chain environments).
    env_scratch: Vec<EnvId>,
}

impl ChainPacket {
    /// `true` when the `|||` expression sat directly in a persistent
    /// environment (the common top-level case: nothing to rebuild).
    pub fn is_trivial(&self) -> bool {
        self.env_lens.is_empty()
    }

    /// Bytes of heap capacity currently retained.
    pub fn byte_capacity(&self) -> usize {
        self.env_lens.capacity() * 4
            + self.syms.byte_capacity()
            + self.values.byte_capacity()
            + self.bind_scratch.capacity() * 16
            + self.env_scratch.capacity() * 8
    }

    /// Caps retained capacity at roughly `budget` bytes.
    pub fn shrink_to_budget(&mut self, budget: usize) {
        self.env_lens.shrink_to(budget / 16);
        self.syms.shrink_to_budget(budget / 4);
        self.values.shrink_to_budget(budget / 2);
        self.bind_scratch.shrink_to(budget / 16);
        self.env_scratch.shrink_to(budget / 16);
    }

    /// Encodes the chain from `parent_env` down to (excluding) the first
    /// persistent environment.
    pub fn encode(&mut self, interp: &Interp, parent_env: EnvId) {
        self.env_lens.clear();
        self.syms.clear();
        self.values.clear();
        self.env_scratch.clear();
        let persistent = interp.persistent_env_count();
        let mut cur = parent_env;
        while cur.index() >= persistent {
            self.env_scratch.push(cur);
            cur = interp
                .envs
                .parent(cur)
                .expect("transient environment without a parent");
        }
        self.anchor = cur.index() as u32;
        for i in (0..self.env_scratch.len()).rev() {
            let env = self.env_scratch[i];
            self.bind_scratch.clear();
            self.bind_scratch.extend(interp.envs.local_bindings(env));
            self.env_lens.push(self.bind_scratch.len() as u32);
            for j in (0..self.bind_scratch.len()).rev() {
                let (sym, value) = self.bind_scratch[j];
                self.syms.push(interp.strings.get(sym));
                self.values.push_tree(interp, value);
            }
        }
    }

    /// Rebuilds the chain inside a replica and returns its innermost
    /// environment (the anchor itself when the chain is trivial). The
    /// rebuilt environments are transient in the replica too — its next
    /// collection reclaims them.
    pub fn rebuild(&self, interp: &mut Interp) -> Result<EnvId> {
        let mut env = EnvId::new(self.anchor as usize);
        let mut k = 0usize;
        for &len in &self.env_lens {
            let child = interp.envs.push(Some(env));
            for _ in 0..len {
                let sym = interp.strings.intern(self.syms.get(k)?);
                let value = self.values.decode(k, interp)?;
                interp.envs.define(child, sym, value, &interp.strings);
                k += 1;
            }
            env = child;
        }
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_to_string;

    fn roundtrip(src: &str) -> (String, String) {
        let mut master = Interp::default();
        let forms = crate::parser::parse(&mut master, src.as_bytes()).unwrap();
        let mut buf = FlatTree::default();
        buf.push_tree(&master, forms[0]);
        let mut replica = Interp::default();
        let decoded = buf.decode(0, &mut replica).unwrap();
        (
            print_to_string(&mut master, forms[0]).unwrap(),
            print_to_string(&mut replica, decoded).unwrap(),
        )
    }

    #[test]
    fn primitives_roundtrip() {
        for src in ["42", "-7", "1.5", "nil", "T", "sym", "\"text\"", "()"] {
            let (a, b) = roundtrip(src);
            assert_eq!(a, b, "{src}");
        }
    }

    #[test]
    fn nested_lists_roundtrip() {
        let (a, b) = roundtrip("(1 (2 (3 4) 5) (() 6) \"s\" sym 7.25)");
        assert_eq!(a, b);
    }

    #[test]
    fn forms_and_builtins_roundtrip() {
        let mut master = Interp::default();
        master.eval_str("(defun addk (a b) (+ a b k))").unwrap();
        let form = master.lookup_global(b"addk").unwrap();
        let plus = master.lookup_global(b"+").unwrap();
        let mut buf = FlatTree::default();
        buf.push_tree(&master, form);
        buf.push_tree(&master, plus);
        let mut replica = Interp::default();
        let form2 = buf.decode(0, &mut replica).unwrap();
        let plus2 = buf.decode(1, &mut replica).unwrap();
        // The decoded form is directly applicable in the replica.
        let g = replica.global;
        let k = replica.strings.intern(b"k");
        let hundred = replica.alloc(Node::int(100)).unwrap();
        replica.envs.define(g, k, hundred, &replica.strings);
        let f = replica.strings.intern(b"decoded-addk");
        replica.envs.define(g, f, form2, &replica.strings);
        assert_eq!(replica.eval_str("(decoded-addk 1 2)").unwrap(), "103");
        assert_eq!(
            print_to_string(&mut replica, plus2).unwrap(),
            "#<builtin +>"
        );
    }

    #[test]
    fn template_splice_is_byte_identical_to_fresh_encode() {
        let mut master = Interp::default();
        let forms = crate::parser::parse(
            &mut master,
            b"(+ 1 (list 2.5 \"x\" \"x\") 'sym (f sym sym))",
        )
        .unwrap();
        let template = TreeTemplate::from_tree(&master, forms[0]);
        // A batch with a preceding tree, so the splice lands at a nonzero
        // word/text offset and rebasing is actually exercised.
        let mut fresh = FlatTree::default();
        fresh.push_tree(&master, forms[0]);
        fresh.push_tree(&master, forms[0]);
        let mut spliced = FlatTree::default();
        spliced.push_tree(&master, forms[0]);
        spliced.push_template(&template);
        assert_eq!(fresh.words, spliced.words);
        assert_eq!(fresh.starts, spliced.starts);
        assert_eq!(fresh.text.spans, spliced.text.spans);
        assert_eq!(fresh.text.bytes, spliced.text.bytes);
        // And the spliced copy decodes to the same printed tree.
        let mut replica = Interp::default();
        let a = spliced.decode(0, &mut replica).unwrap();
        let b = spliced.decode(1, &mut replica).unwrap();
        assert_eq!(
            print_to_string(&mut replica, a).unwrap(),
            print_to_string(&mut replica, b).unwrap()
        );
    }

    #[test]
    fn batches_decode_independently_and_clear_reuses() {
        let mut master = Interp::default();
        let forms = crate::parser::parse(&mut master, b"(1 2) (3 4 5) 9").unwrap();
        let mut buf = FlatTree::default();
        for &f in &forms {
            buf.push_tree(&master, f);
        }
        assert_eq!(buf.len(), 3);
        let mut replica = Interp::default();
        for (i, expect) in ["(1 2)", "(3 4 5)", "9"].iter().enumerate() {
            let d = buf.decode(i, &mut replica).unwrap();
            assert_eq!(&print_to_string(&mut replica, d).unwrap(), expect);
        }
        buf.clear();
        assert!(buf.is_empty());
        buf.push_tree(&master, forms[2]);
        let d = buf.decode(0, &mut replica).unwrap();
        assert_eq!(print_to_string(&mut replica, d).unwrap(), "9");
    }

    #[test]
    fn sync_packet_replays_defines_and_sets() {
        let mut master = Interp::default();
        let epoch0 = master.envs.sync_epoch();
        let mut replica = master.clone();
        master.eval_str("(setq x 1)").unwrap(); // define (unbound fallback)
        master.eval_str("(defun sq (n) (* n n))").unwrap();
        master.eval_str("(setq x 2)").unwrap(); // set on existing binding
        let mut packet = SyncPacket::default();
        packet.encode_since(&master, epoch0);
        assert_eq!(packet.len(), 3);
        packet.apply(&mut replica).unwrap();
        assert_eq!(replica.eval_str("(sq x)").unwrap(), "4");
        // Incremental: nothing new → empty packet → replica unchanged.
        let epoch1 = master.envs.sync_epoch();
        packet.encode_since(&master, epoch1);
        assert!(packet.is_empty());
    }

    #[test]
    fn sync_packet_set_falls_back_to_define_after_compaction() {
        let mut master = Interp::default();
        let epoch0 = master.envs.sync_epoch();
        let mut replica = master.clone();
        // 70 distinct defines push the log over the compaction threshold,
        // then a set overwrites one of them; compaction keeps only the set.
        for i in 0..70 {
            master.eval_str(&format!("(setq v{i} {i})")).unwrap();
        }
        master.eval_str("(setq v3 333)").unwrap();
        crate::gc::collect(&mut master, &[]);
        let mut packet = SyncPacket::default();
        packet.encode_since(&master, epoch0);
        packet.apply(&mut replica).unwrap();
        assert_eq!(replica.eval_str("v3").unwrap(), "333");
        assert_eq!(replica.eval_str("(+ v0 v69)").unwrap(), "69");
    }

    #[test]
    fn chain_packet_rebuilds_transient_bindings() {
        let mut master = Interp::default();
        let mut replica = master.clone();
        // Build a transient chain by hand: global → e1(a=1, shadows) → e2(b).
        let g = master.global;
        let e1 = master.envs.push(Some(g));
        let a = master.strings.intern(b"a");
        let v1 = master.alloc(Node::int(1)).unwrap();
        master.envs.define(e1, a, v1, &master.strings);
        let v2 = master.alloc(Node::int(2)).unwrap();
        master.envs.define(e1, a, v2, &master.strings); // shadows a=1
        let e2 = master.envs.push(Some(e1));
        let b = master.strings.intern(b"b");
        let v3 = master.alloc(Node::int(30)).unwrap();
        master.envs.define(e2, b, v3, &master.strings);

        let mut packet = ChainPacket::default();
        packet.encode(&master, e2);
        assert!(!packet.is_trivial());
        let tail = packet.rebuild(&mut replica).unwrap();
        let mut m = Meter::new();
        let ra = replica.strings.intern(b"a");
        let rb = replica.strings.intern(b"b");
        let got_a = replica
            .envs
            .lookup(tail, ra, &replica.strings, &mut m)
            .unwrap();
        let got_b = replica
            .envs
            .lookup(tail, rb, &replica.strings, &mut m)
            .unwrap();
        assert_eq!(replica.arena.get(got_a).payload, Payload::Int(2));
        assert_eq!(replica.arena.get(got_b).payload, Payload::Int(30));
    }

    #[test]
    fn env_snapshot_rebuilds_exact_structure() {
        let mut master = Interp::default();
        let mut replica = master.clone();
        master.eval_str("(setq a 1)").unwrap();
        master.eval_str("(defun f (x) (+ x a))").unwrap();
        master.eval_str("(defun f (x) (- x a))").unwrap(); // shadowing redefine
        master.eval_str("(setq a 2)").unwrap();
        let mut snap = EnvSnapshot::default();
        snap.encode(&master);
        snap.apply(&mut replica).unwrap();
        assert_eq!(replica.eval_str("(f 10)").unwrap(), "8");
        // Structure fidelity: the faithful scan pays the same charges in
        // the replica as in the master, shadowed redefine included.
        for name in ["a", "f", "+", "car", "no-such-symbol"] {
            let mut mm = Meter::new();
            let mut rm = Meter::new();
            let ms = master.strings.intern(name.as_bytes());
            let rs = replica.strings.intern(name.as_bytes());
            let got_m = master
                .envs
                .lookup(master.global, ms, &master.strings, &mut mm);
            let got_r = replica
                .envs
                .lookup(replica.global, rs, &replica.strings, &mut rm);
            assert_eq!(got_m.is_some(), got_r.is_some(), "{name}");
            assert_eq!(mm.snapshot(), rm.snapshot(), "charges for {name}");
        }
    }

    #[test]
    fn env_snapshot_size_tracks_live_bindings_not_mutation_volume() {
        let mut master = Interp::default();
        master.eval_str("(setq v 0)").unwrap();
        let mut before = EnvSnapshot::default();
        before.encode(&master);
        for i in 0..500 {
            master.eval_str(&format!("(setq v {i})")).unwrap();
        }
        let mut replay = SyncPacket::default();
        replay.encode_since(&master, 0);
        let mut after = EnvSnapshot::default();
        after.encode(&master);
        assert_eq!(after.record_count(), before.record_count());
        assert!(
            after.byte_size() < replay.byte_size(),
            "snapshot {} bytes vs replay {} bytes",
            after.byte_size(),
            replay.byte_size()
        );
    }

    #[test]
    fn shrink_to_budget_caps_retained_capacity() {
        let mut master = Interp::default();
        let big = format!("({})", "123456789 ".repeat(4096));
        let forms = crate::parser::parse(&mut master, big.as_bytes()).unwrap();
        let mut buf = FlatTree::default();
        buf.push_tree(&master, forms[0]);
        buf.clear();
        assert!(buf.byte_capacity() > 1 << 15);
        buf.shrink_to_budget(1 << 10);
        assert!(
            buf.byte_capacity() <= 1 << 12,
            "retained {} bytes",
            buf.byte_capacity()
        );
        // Still usable after shrinking.
        buf.push_tree(&master, forms[0]);
        let mut replica = Interp::default();
        assert!(buf.decode(0, &mut replica).is_ok());
    }

    #[test]
    fn chain_packet_is_trivial_at_top_level() {
        let master = Interp::default();
        let mut packet = ChainPacket::default();
        packet.encode(&master, master.global);
        assert!(packet.is_trivial());
        let mut replica = master.clone();
        assert_eq!(packet.rebuild(&mut replica).unwrap(), replica.global);
    }
}
