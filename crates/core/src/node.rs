//! The node — CuLi's single universal value representation.
//!
//! Paper §III-A a: *"The most basic structure of CuLi is the node ... Such a
//! node stores values, functions and links to other nodes. After a value has
//! been assigned to a node, it becomes immutable."*
//!
//! Every node carries a type tag and a payload, plus a `next` link used when
//! the node is an element of a list. Lists carry first/last child pointers
//! (paper Fig. 2), so `car` is one hop and appending during parsing is O(1).

use crate::types::{BuiltinId, NodeId, StrId};

/// The node type tag, mirroring the paper's `N_*` enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// `N_NIL` — the false/empty value.
    Nil,
    /// `N_TRUE` — the true value, printed `T`.
    True,
    /// `N_INT` — 64-bit signed integer.
    Int,
    /// `N_FLOAT` — IEEE-754 double.
    Float,
    /// `N_STRING` — immutable byte string.
    Str,
    /// `N_SYMBOL` — a name, late-bound through environments.
    Symbol,
    /// `N_FUNCTION` — a built-in function stored in the global environment.
    Function,
    /// `N_LIST` — a linked list of child nodes.
    List,
    /// `N_EXPRESSION` — a list whose head resolved to a built-in; the
    /// intermediate step of evaluation (paper Fig. 3).
    Expression,
    /// `N_FORM` — a user-defined function (`defun`): parameter list + body.
    Form,
    /// A user-defined macro (`defmacro`): like a form, but arguments arrive
    /// unevaluated and the expansion is evaluated again. The paper lists
    /// macros among the supported features without detailing them.
    Macro,
}

impl NodeType {
    /// `true` for types whose nodes evaluate to themselves unchanged
    /// (paper §III-B c: *"If the node type is none of the previously
    /// mentioned ones it must be a primitive and can be returned
    /// unchanged"*).
    pub fn is_self_evaluating(self) -> bool {
        matches!(
            self,
            NodeType::Nil
                | NodeType::True
                | NodeType::Int
                | NodeType::Float
                | NodeType::Str
                | NodeType::Function
                | NodeType::Form
                | NodeType::Macro
        )
    }
}

/// Node payload, one variant per [`NodeType`] family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// `Nil`/`True` carry no payload.
    Empty,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Interned text of a string or symbol.
    Text(StrId),
    /// Registry handle of a built-in function.
    Builtin(BuiltinId),
    /// List contents: first and last child (paper Fig. 2 keeps both so the
    /// parser can append in O(1) and printing knows where to stop).
    List {
        /// First child, `None` for the empty list.
        first: Option<NodeId>,
        /// Last child, `None` for the empty list.
        last: Option<NodeId>,
    },
    /// User-defined function or macro: parameter list and body.
    Form {
        /// `N_LIST` node holding parameter symbols.
        params: NodeId,
        /// Body expression evaluated on application.
        body: NodeId,
    },
}

/// One slot of the node arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// The type tag.
    pub ty: NodeType,
    /// Payload as dictated by `ty`.
    pub payload: Payload,
    /// Sibling link: the next element when this node sits inside a list.
    pub next: Option<NodeId>,
}

impl Node {
    /// A fresh node with no sibling.
    pub fn new(ty: NodeType, payload: Payload) -> Self {
        Self {
            ty,
            payload,
            next: None,
        }
    }

    /// The canonical nil node value.
    pub fn nil() -> Self {
        Self::new(NodeType::Nil, Payload::Empty)
    }

    /// The canonical true node value.
    pub fn truth() -> Self {
        Self::new(NodeType::True, Payload::Empty)
    }

    /// Integer node.
    pub fn int(v: i64) -> Self {
        Self::new(NodeType::Int, Payload::Int(v))
    }

    /// Float node.
    pub fn float(v: f64) -> Self {
        Self::new(NodeType::Float, Payload::Float(v))
    }

    /// Symbol node over interned text.
    pub fn symbol(s: StrId) -> Self {
        Self::new(NodeType::Symbol, Payload::Text(s))
    }

    /// String node over interned text.
    pub fn string(s: StrId) -> Self {
        Self::new(NodeType::Str, Payload::Text(s))
    }

    /// Built-in function node.
    pub fn function(f: BuiltinId) -> Self {
        Self::new(NodeType::Function, Payload::Builtin(f))
    }

    /// Empty list node.
    pub fn empty_list() -> Self {
        Self::new(
            NodeType::List,
            Payload::List {
                first: None,
                last: None,
            },
        )
    }

    /// In Lisp, everything except `nil` (and the empty list, which *is*
    /// nil-valued) is truthy.
    pub fn is_truthy(&self) -> bool {
        match self.ty {
            NodeType::Nil => false,
            NodeType::List => !matches!(self.payload, Payload::List { first: None, .. }),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_evaluating_classification() {
        assert!(NodeType::Int.is_self_evaluating());
        assert!(NodeType::Nil.is_self_evaluating());
        assert!(NodeType::Str.is_self_evaluating());
        assert!(!NodeType::Symbol.is_self_evaluating());
        assert!(!NodeType::List.is_self_evaluating());
        assert!(!NodeType::Expression.is_self_evaluating());
    }

    #[test]
    fn truthiness() {
        assert!(!Node::nil().is_truthy());
        assert!(Node::truth().is_truthy());
        assert!(Node::int(0).is_truthy(), "0 is truthy in Lisp");
        assert!(Node::float(0.0).is_truthy());
        assert!(!Node::empty_list().is_truthy(), "() is nil");
        let lst = Node::new(
            NodeType::List,
            Payload::List {
                first: Some(NodeId::new(0)),
                last: Some(NodeId::new(0)),
            },
        );
        assert!(lst.is_truthy());
    }

    #[test]
    fn constructors_set_types() {
        assert_eq!(Node::int(5).ty, NodeType::Int);
        assert_eq!(Node::float(1.5).ty, NodeType::Float);
        assert_eq!(Node::nil().ty, NodeType::Nil);
        assert_eq!(Node::empty_list().ty, NodeType::List);
    }

    #[test]
    fn node_is_small() {
        // One arena slot should stay cache-friendly; the paper packs nodes
        // into a contiguous global array.
        assert!(
            core::mem::size_of::<Node>() <= 32,
            "{}",
            core::mem::size_of::<Node>()
        );
    }
}
