//! Interned string storage.
//!
//! The C original stores `const char *` pointers in nodes; symbols are
//! compared with `strcmp` during environment lookup. Here text lives in an
//! append-only table and nodes hold [`StrId`] handles. Symbols are
//! deduplicated so identical names share one id — the cost model still
//! charges byte-comparison work for symbol lookups (see
//! [`crate::env::EnvArena::lookup`]) to stay faithful to what the device
//! actually pays.

use crate::types::StrId;
use std::collections::HashMap;

/// Append-only, deduplicating text table.
#[derive(Debug, Clone, Default)]
pub struct StrTable {
    texts: Vec<Box<[u8]>>,
    dedup: HashMap<Box<[u8]>, StrId>,
}

impl StrTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning the existing id when the exact bytes were
    /// seen before.
    pub fn intern(&mut self, text: &[u8]) -> StrId {
        if let Some(&id) = self.dedup.get(text) {
            return id;
        }
        let id = StrId::new(self.texts.len());
        let boxed: Box<[u8]> = text.into();
        self.texts.push(boxed.clone());
        self.dedup.insert(boxed, id);
        id
    }

    /// The bytes behind an id.
    pub fn get(&self, id: StrId) -> &[u8] {
        &self.texts[id.index()]
    }

    /// Length in bytes of the text behind `id`.
    pub fn len_of(&self, id: StrId) -> usize {
        self.texts[id.index()].len()
    }

    /// Number of distinct interned texts.
    pub fn count(&self) -> usize {
        self.texts.len()
    }

    /// Lossy UTF-8 view for diagnostics.
    pub fn display(&self, id: StrId) -> String {
        String::from_utf8_lossy(self.get(id)).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut t = StrTable::new();
        let a = t.intern(b"fib");
        let b = t.intern(b"fib");
        let c = t.intern(b"fob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn get_roundtrips() {
        let mut t = StrTable::new();
        let id = t.intern(b"hello world");
        assert_eq!(t.get(id), b"hello world");
        assert_eq!(t.len_of(id), 11);
        assert_eq!(t.display(id), "hello world");
    }

    #[test]
    fn empty_string_is_internable() {
        let mut t = StrTable::new();
        let id = t.intern(b"");
        assert_eq!(t.get(id), b"");
    }

    #[test]
    fn case_sensitive() {
        let mut t = StrTable::new();
        assert_ne!(t.intern(b"Foo"), t.intern(b"foo"));
    }
}
