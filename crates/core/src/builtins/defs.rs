//! Definition built-ins: `defun defmacro lambda let let* setq`.
//!
//! * `defun` stores an `N_FORM` under its name **in the global
//!   environment** (paper §III-A b).
//! * `let` follows the paper's description — *"adds a new symbol and the
//!   corresponding value to the environment of the current expression"* —
//!   in its two-argument shape `(let sym expr)`. The Common-Lisp shape
//!   `(let ((a 1) (b 2)) body…)` is also accepted as an extension.
//! * `setq` *"updates the nearest existing symbol that matches"*; when no
//!   binding exists anywhere it creates a global one. The paper warns this
//!   is the side-effecting primitive to use carefully under `|||`.

use super::util::{expect_exact, expect_min, nil};
use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId, StrId};

/// Extracts the interned symbol of a symbol node.
fn symbol_of(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<StrId> {
    let n = interp.arena.get(id);
    match (n.ty, n.payload) {
        (NodeType::Symbol, Payload::Text(s)) => Ok(s),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a symbol",
        }),
    }
}

/// Wraps multiple body forms into one `(progn …)` expression; a single form
/// is used as-is.
fn wrap_body(interp: &mut Interp, body: &[NodeId]) -> Result<NodeId> {
    match body {
        [single] => Ok(*single),
        _ => {
            let list = interp.alloc(Node::empty_list())?;
            let progn = interp.symbol(b"progn")?;
            interp.arena.list_append(list, progn);
            for &b in body {
                let copy = interp.copy_for_list(b)?;
                interp.arena.list_append(list, copy);
            }
            Ok(list)
        }
    }
}

fn make_callable(
    interp: &mut Interp,
    ty: NodeType,
    params: NodeId,
    body: &[NodeId],
    builtin: &'static str,
) -> Result<NodeId> {
    if interp.arena.get(params).ty != NodeType::List {
        return Err(CuliError::Type {
            builtin,
            expected: "a parameter list",
        });
    }
    if body.is_empty() {
        return Err(CuliError::Arity {
            builtin,
            expected: "a body",
            got: 0,
        });
    }
    let body = wrap_body(interp, body)?;
    interp.alloc(Node::new(ty, Payload::Form { params, body }))
}

/// `(defun name (params…) body…)` — define a form globally; returns the
/// name symbol.
pub fn defun(
    interp: &mut Interp,
    _hook: &mut dyn ParallelHook,
    args: &[NodeId],
    _env: EnvId,
    _depth: usize,
) -> Result<NodeId> {
    expect_min("defun", args, 3)?;
    let name = symbol_of(interp, args[0], "defun")?;
    let form = make_callable(interp, NodeType::Form, args[1], &args[2..], "defun")?;
    interp
        .envs
        .define(interp.global, name, form, &interp.strings);
    Ok(args[0])
}

/// `(defmacro name (params…) body…)` — define a macro globally; returns
/// the name symbol.
pub fn defmacro(
    interp: &mut Interp,
    _hook: &mut dyn ParallelHook,
    args: &[NodeId],
    _env: EnvId,
    _depth: usize,
) -> Result<NodeId> {
    expect_min("defmacro", args, 3)?;
    let name = symbol_of(interp, args[0], "defmacro")?;
    let mac = make_callable(interp, NodeType::Macro, args[1], &args[2..], "defmacro")?;
    interp
        .envs
        .define(interp.global, name, mac, &interp.strings);
    Ok(args[0])
}

/// `(lambda (params…) body…)` — anonymous form, returned as a value.
pub fn lambda(
    interp: &mut Interp,
    _hook: &mut dyn ParallelHook,
    args: &[NodeId],
    _env: EnvId,
    _depth: usize,
) -> Result<NodeId> {
    expect_min("lambda", args, 2)?;
    make_callable(interp, NodeType::Form, args[0], &args[1..], "lambda")
}

/// `(let sym expr)` (paper style) or `(let ((a e1) (b e2)…) body…)`
/// (Common-Lisp style extension).
pub fn let_(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("let", args, 2)?;
    match interp.arena.get(args[0]).ty {
        NodeType::Symbol => {
            expect_exact("let", args, 2)?;
            let sym = symbol_of(interp, args[0], "let")?;
            let value = eval(interp, hook, args[1], env, depth + 1)?;
            interp.envs.define(env, sym, value, &interp.strings);
            Ok(value)
        }
        NodeType::List => cl_let(interp, hook, args, env, depth, false),
        _ => Err(CuliError::Type {
            builtin: "let",
            expected: "a symbol or binding list",
        }),
    }
}

/// `(let* ((a e1) (b e2)…) body…)` — sequential binding: each initializer
/// sees the bindings before it.
pub fn let_star(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("let*", args, 2)?;
    if interp.arena.get(args[0]).ty != NodeType::List {
        return Err(CuliError::Type {
            builtin: "let*",
            expected: "a binding list",
        });
    }
    cl_let(interp, hook, args, env, depth, true)
}

fn cl_let(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    sequential: bool,
) -> Result<NodeId> {
    let builtin: &'static str = if sequential { "let*" } else { "let" };
    let bindings = interp.arena.list_children(args[0]);
    let inner = interp.envs.push(Some(env));
    for &b in &bindings {
        let parts = match interp.arena.get(b).ty {
            NodeType::List => interp.arena.list_children(b),
            _ => {
                return Err(CuliError::Type {
                    builtin,
                    expected: "(symbol value) binding pairs",
                })
            }
        };
        if parts.len() != 2 {
            return Err(CuliError::Type {
                builtin,
                expected: "(symbol value) binding pairs",
            });
        }
        let sym = symbol_of(interp, parts[0], builtin)?;
        let init_env = if sequential { inner } else { env };
        let value = eval(interp, hook, parts[1], init_env, depth + 1)?;
        interp.envs.define(inner, sym, value, &interp.strings);
    }
    let mut last = None;
    for &body in &args[1..] {
        last = Some(eval(interp, hook, body, inner, depth + 1)?);
    }
    match last {
        Some(v) => Ok(v),
        None => nil(interp),
    }
}

/// `(setq sym expr [sym2 expr2 …])` — update the nearest binding of each
/// symbol (defining globally when unbound); returns the last value.
pub fn setq(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    if args.is_empty() || !args.len().is_multiple_of(2) {
        return Err(CuliError::Arity {
            builtin: "setq",
            expected: "an even number of",
            got: args.len(),
        });
    }
    let mut last = None;
    for pair in args.chunks_exact(2) {
        let sym = symbol_of(interp, pair[0], "setq")?;
        let value = eval(interp, hook, pair[1], env, depth + 1)?;
        let updated = interp
            .envs
            .set_nearest(env, sym, value, &interp.strings, &mut interp.meter);
        if !updated {
            interp
                .envs
                .define(interp.global, sym, value, &interp.strings);
        }
        last = Some(value);
    }
    Ok(last.expect("non-empty pairs"))
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn defun_returns_name_and_defines_globally() {
        let mut i = Interp::default();
        assert_eq!(i.eval_str("(defun sq (x) (* x x))").unwrap(), "sq");
        assert_eq!(i.eval_str("(sq 9)").unwrap(), "81");
    }

    #[test]
    fn defun_multi_form_body_wraps_in_progn() {
        let mut i = Interp::default();
        i.eval_str("(defun f (x) (setq y x) (+ y 1))").unwrap();
        assert_eq!(i.eval_str("(f 10)").unwrap(), "11");
        assert_eq!(i.eval_str("y").unwrap(), "10");
    }

    #[test]
    fn defun_from_inside_a_form_is_global() {
        // Paper: defun stores in the *global* environment even when invoked
        // from a nested scope.
        let mut i = Interp::default();
        i.eval_str("(defun outer () (defun inner () 42))").unwrap();
        i.eval_str("(outer)").unwrap();
        assert_eq!(i.eval_str("(inner)").unwrap(), "42");
    }

    #[test]
    fn lambda_is_a_value() {
        assert_eq!(run("((lambda (x) (+ x 1)) 41)"), "42");
        let mut i = Interp::default();
        i.eval_str("(setq inc (lambda (x) (+ x 1)))").unwrap();
        assert_eq!(i.eval_str("(inc 1)").unwrap(), "2");
    }

    #[test]
    fn paper_style_let_binds_in_current_env() {
        let mut i = Interp::default();
        assert_eq!(i.eval_str("(progn (let x 5) (+ x 1))").unwrap(), "6");
    }

    #[test]
    fn paper_style_let_returns_the_value() {
        assert_eq!(run("(let x 5)"), "5");
    }

    #[test]
    fn cl_style_let_scopes_bindings() {
        let mut i = Interp::default();
        i.eval_str("(setq x 1)").unwrap();
        assert_eq!(i.eval_str("(let ((x 10) (y 2)) (+ x y))").unwrap(), "12");
        assert_eq!(i.eval_str("x").unwrap(), "1", "outer x untouched");
    }

    #[test]
    fn cl_let_initializers_see_outer_scope() {
        let mut i = Interp::default();
        i.eval_str("(setq x 1)").unwrap();
        // Plain let: both initializers evaluate against the *outer* env.
        assert_eq!(i.eval_str("(let ((x 10) (y x)) y)").unwrap(), "1");
        // let*: sequential, y sees the new x.
        assert_eq!(i.eval_str("(let* ((x 10) (y x)) y)").unwrap(), "10");
    }

    #[test]
    fn setq_updates_nearest_then_global() {
        let mut i = Interp::default();
        i.eval_str("(setq x 1)").unwrap();
        i.eval_str("(defun poke () (setq x 99))").unwrap();
        i.eval_str("(poke)").unwrap();
        assert_eq!(
            i.eval_str("x").unwrap(),
            "99",
            "setq reached the global binding"
        );
    }

    #[test]
    fn setq_shadowed_by_parameter_stays_local() {
        let mut i = Interp::default();
        i.eval_str("(setq x 1)").unwrap();
        i.eval_str("(defun poke (x) (setq x 99) x)").unwrap();
        assert_eq!(i.eval_str("(poke 5)").unwrap(), "99");
        assert_eq!(i.eval_str("x").unwrap(), "1", "parameter absorbed the setq");
    }

    #[test]
    fn setq_multiple_pairs() {
        let mut i = Interp::default();
        assert_eq!(i.eval_str("(setq a 1 b 2)").unwrap(), "2");
        assert_eq!(i.eval_str("(+ a b)").unwrap(), "3");
    }

    #[test]
    fn setq_odd_args_error() {
        assert!(matches!(
            Interp::default().eval_str("(setq a)").unwrap_err(),
            CuliError::Arity { .. }
        ));
    }

    #[test]
    fn defmacro_expands_unevaluated() {
        let mut i = Interp::default();
        // A macro receives the raw argument expression; (my-if c a b)
        // rewrites into a cond. The division by zero in the untaken branch
        // must never run.
        i.eval_str("(defmacro my-if (c a b) (list 'cond (list c a) (list T b)))")
            .unwrap();
        assert_eq!(i.eval_str("(my-if (< 1 2) 10 (/ 1 0))").unwrap(), "10");
        assert_eq!(i.eval_str("(my-if (> 1 2) (/ 1 0) 20)").unwrap(), "20");
    }

    #[test]
    fn type_errors() {
        assert!(matches!(
            Interp::default().eval_str("(defun 5 (x) x)").unwrap_err(),
            CuliError::Type { .. }
        ));
        assert!(matches!(
            Interp::default().eval_str("(let 5 5)").unwrap_err(),
            CuliError::Type { .. }
        ));
    }
}
