//! File-I/O built-ins: `read-file write-file file-exists`.
//!
//! The paper's future-work feature (§III-D end): file I/O is routed over
//! the host↔device message buffer. The device side is these builtins; the
//! host side is whatever [`crate::hostio::HostIo`] the runtime attached.
//! Byte traffic is charged to the meter (reads as scanned chars, writes as
//! output bytes), standing in for the extra command-buffer round trips.

use super::util::{bool_node, eval_args, expect_exact};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::hostio::HostIoHandle;
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId, StrId};

fn host_io(interp: &Interp) -> Result<HostIoHandle> {
    interp
        .host_io
        .clone()
        .ok_or_else(|| CuliError::Io("no host I/O services attached to this session".into()))
}

fn string_arg(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<StrId> {
    let n = interp.arena.get(id);
    match (n.ty, n.payload) {
        (NodeType::Str, Payload::Text(s)) => Ok(s),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a string path",
        }),
    }
}

/// `(read-file "path")` — the file contents as a string.
pub fn read_file(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("read-file", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let path = string_arg(interp, values[0], "read-file")?;
    let io = host_io(interp)?;
    let path_bytes = interp.strings.get(path).to_vec();
    let data = io.0.read_file(&path_bytes).map_err(CuliError::Io)?;
    // The content crosses the command buffer and is then scanned into
    // device memory.
    interp.meter.chars_scanned(data.len() as u64);
    let sid = interp.strings.intern(&data);
    interp.alloc(Node::string(sid))
}

/// `(write-file "path" "content")` — writes and returns T.
pub fn write_file(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("write-file", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let path = string_arg(interp, values[0], "write-file")?;
    let content = string_arg(interp, values[1], "write-file")?;
    let io = host_io(interp)?;
    let path_bytes = interp.strings.get(path).to_vec();
    let data = interp.strings.get(content).to_vec();
    interp.meter.output_bytes(data.len() as u64);
    io.0.write_file(&path_bytes, &data).map_err(CuliError::Io)?;
    bool_node(interp, true)
}

/// `(file-exists "path")` — T or nil.
pub fn file_exists(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("file-exists", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let path = string_arg(interp, values[0], "file-exists")?;
    let io = host_io(interp)?;
    let path_bytes = interp.strings.get(path).to_vec();
    let exists = io.0.exists(&path_bytes);
    bool_node(interp, exists)
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::hostio::{testing::MemIo, HostIoHandle};
    use crate::interp::Interp;

    fn interp_with_io() -> Interp {
        let mut i = Interp::default();
        let io = Some(HostIoHandle::new(MemIo::default()));
        i.host_io = io;
        i
    }

    #[test]
    fn write_then_read() {
        let mut i = interp_with_io();
        assert_eq!(
            i.eval_str("(write-file \"a.txt\" \"hello device\")")
                .unwrap(),
            "T"
        );
        assert_eq!(
            i.eval_str("(read-file \"a.txt\")").unwrap(),
            "\"hello device\""
        );
        assert_eq!(i.eval_str("(file-exists \"a.txt\")").unwrap(), "T");
        assert_eq!(i.eval_str("(file-exists \"b.txt\")").unwrap(), "nil");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let mut i = interp_with_io();
        assert!(matches!(
            i.eval_str("(read-file \"nope\")").unwrap_err(),
            CuliError::Io(_)
        ));
    }

    #[test]
    fn no_host_io_attached_is_an_io_error() {
        let mut i = Interp::default();
        assert!(matches!(
            i.eval_str("(read-file \"x\")").unwrap_err(),
            CuliError::Io(msg) if msg.contains("no host I/O")
        ));
    }

    #[test]
    fn io_charges_byte_traffic() {
        let mut i = interp_with_io();
        i.eval_str("(write-file \"f\" \"0123456789\")").unwrap();
        let before = i.meter.snapshot();
        i.eval_str("(read-file \"f\")").unwrap();
        let d = i.meter.snapshot().delta_since(&before);
        assert!(
            d.chars_scanned >= 10,
            "read bytes charged: {}",
            d.chars_scanned
        );
    }

    #[test]
    fn lisp_level_composition() {
        let mut i = interp_with_io();
        i.eval_str("(write-file \"n.txt\" (number-to-string (* 6 7)))")
            .unwrap();
        assert_eq!(
            i.eval_str("(string-to-number (read-file \"n.txt\"))")
                .unwrap(),
            "42"
        );
    }
}
