//! Type predicates: `atom null listp consp numberp symbolp stringp zerop`.

use super::util::{bool_node, eval_args, expect_exact};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::{NodeType, Payload};
use crate::types::{EnvId, NodeId};

fn one_value(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
) -> Result<NodeId> {
    expect_exact(name, args, 1)?;
    Ok(eval_args(interp, hook, args, env, depth)?[0])
}

/// `(atom x)` — everything that is not a (non-empty) list.
pub fn atom(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "atom")?;
    let n = interp.arena.get(v);
    let is_atom = match n.ty {
        NodeType::List | NodeType::Expression => {
            matches!(n.payload, Payload::List { first: None, .. }) // () is an atom
        }
        _ => true,
    };
    bool_node(interp, is_atom)
}

/// `(null x)` — T for nil and the empty list.
pub fn null(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "null")?;
    let truthy = interp.arena.get(v).is_truthy();
    bool_node(interp, !truthy)
}

/// `(listp x)` — T for lists (including empty) and nil.
pub fn listp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "listp")?;
    let ty = interp.arena.get(v).ty;
    bool_node(
        interp,
        matches!(ty, NodeType::List | NodeType::Expression | NodeType::Nil),
    )
}

/// `(consp x)` — T only for non-empty lists.
pub fn consp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "consp")?;
    let n = interp.arena.get(v);
    let is_cons = matches!(n.ty, NodeType::List | NodeType::Expression)
        && !matches!(n.payload, Payload::List { first: None, .. });
    bool_node(interp, is_cons)
}

/// `(numberp x)`.
pub fn numberp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "numberp")?;
    let ty = interp.arena.get(v).ty;
    bool_node(interp, matches!(ty, NodeType::Int | NodeType::Float))
}

/// `(symbolp x)`.
pub fn symbolp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "symbolp")?;
    let ty = interp.arena.get(v).ty;
    bool_node(interp, ty == NodeType::Symbol)
}

/// `(stringp x)`.
pub fn stringp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "stringp")?;
    let ty = interp.arena.get(v).ty;
    bool_node(interp, ty == NodeType::Str)
}

/// `(zerop x)` — T for integer 0 and float 0.0.
pub fn zerop(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_value(interp, hook, args, env, depth, "zerop")?;
    match interp.arena.get(v).payload {
        Payload::Int(i) => bool_node(interp, i == 0),
        Payload::Float(f) => bool_node(interp, f == 0.0),
        _ => Err(CuliError::Type {
            builtin: "zerop",
            expected: "a number",
        }),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn atom_predicate() {
        assert_eq!(run("(atom 5)"), "T");
        assert_eq!(run("(atom 'x)"), "T");
        assert_eq!(run("(atom nil)"), "T");
        assert_eq!(run("(atom ())"), "T");
        assert_eq!(run("(atom (list 1))"), "nil");
    }

    #[test]
    fn null_predicate() {
        assert_eq!(run("(null nil)"), "T");
        assert_eq!(run("(null ())"), "T");
        assert_eq!(run("(null 0)"), "nil");
        assert_eq!(run("(null (list 1))"), "nil");
    }

    #[test]
    fn list_predicates() {
        assert_eq!(run("(listp (list 1))"), "T");
        assert_eq!(run("(listp ())"), "T");
        assert_eq!(run("(listp nil)"), "T");
        assert_eq!(run("(listp 5)"), "nil");
        assert_eq!(run("(consp (list 1))"), "T");
        assert_eq!(run("(consp ())"), "nil");
        assert_eq!(run("(consp nil)"), "nil");
    }

    #[test]
    fn type_predicates() {
        assert_eq!(run("(numberp 1)"), "T");
        assert_eq!(run("(numberp 1.5)"), "T");
        assert_eq!(run("(numberp 'x)"), "nil");
        assert_eq!(run("(symbolp 'x)"), "T");
        assert_eq!(run("(symbolp 1)"), "nil");
        assert_eq!(run("(stringp \"s\")"), "T");
        assert_eq!(run("(stringp 's)"), "nil");
    }

    #[test]
    fn zerop_predicate() {
        assert_eq!(run("(zerop 0)"), "T");
        assert_eq!(run("(zerop 0.0)"), "T");
        assert_eq!(run("(zerop 1)"), "nil");
        assert!(Interp::default().eval_str("(zerop 'x)").is_err());
    }
}
