//! Built-in functions (`N_FUNCTION` nodes in the global environment).
//!
//! Paper §III-A b: built-ins are *"stored as function pointers and they
//! expect a list of nodes containing the parameters and a pointer to the
//! environment that should be used for its execution"*. Exactly so here:
//! every built-in is a plain `fn` receiving its argument nodes
//! **unevaluated** plus the evaluation environment; each decides what to
//! evaluate (`setq` and `quote` famously do not).

use crate::error::Result;
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::types::{BuiltinId, EnvId, NodeId};

mod arith;
pub(crate) mod compare;
mod control;
mod defs;
mod higher;
mod io;
mod iter;
mod lists;
mod logic;
mod math;
mod parallel;
mod predicates;
mod quasi;
mod strfns;
pub(crate) mod util;

pub use parallel::{finish_section, prepare_section};

/// Signature of every built-in: unevaluated argument nodes, the evaluation
/// environment, and the current recursion depth (threaded through so deep
/// builtin chains still hit the recursion limit).
pub type BuiltinFn =
    fn(&mut Interp, &mut dyn ParallelHook, &[NodeId], EnvId, usize) -> Result<NodeId>;

/// A named built-in.
#[derive(Clone, Copy)]
pub struct BuiltinDef {
    /// The symbol under which the function is stored globally.
    pub name: &'static str,
    /// The implementation.
    pub func: BuiltinFn,
}

impl core::fmt::Debug for BuiltinDef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "BuiltinDef({})", self.name)
    }
}

/// The registry resolves [`BuiltinId`]s stored in nodes back to functions.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    defs: Vec<BuiltinDef>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a definition, returning its id.
    pub fn register(&mut self, def: &BuiltinDef) -> BuiltinId {
        let id = BuiltinId::new(self.defs.len());
        self.defs.push(*def);
        id
    }

    /// The function behind an id.
    pub fn func(&self, id: BuiltinId) -> BuiltinFn {
        self.defs[id.index()].func
    }

    /// The name behind an id.
    pub fn name(&self, id: BuiltinId) -> &'static str {
        self.defs[id.index()].name
    }

    /// Number of registered built-ins.
    pub fn count(&self) -> usize {
        self.defs.len()
    }
}

/// Every built-in CuLi ships, in registration order.
pub fn all_builtins() -> &'static [BuiltinDef] {
    &[
        // Arithmetic
        BuiltinDef {
            name: "+",
            func: arith::add,
        },
        BuiltinDef {
            name: "-",
            func: arith::sub,
        },
        BuiltinDef {
            name: "*",
            func: arith::mul,
        },
        BuiltinDef {
            name: "/",
            func: arith::div,
        },
        BuiltinDef {
            name: "mod",
            func: arith::modulo,
        },
        BuiltinDef {
            name: "abs",
            func: arith::abs,
        },
        BuiltinDef {
            name: "min",
            func: arith::min,
        },
        BuiltinDef {
            name: "max",
            func: arith::max,
        },
        // Comparison
        BuiltinDef {
            name: "=",
            func: compare::num_eq,
        },
        BuiltinDef {
            name: "/=",
            func: compare::num_ne,
        },
        BuiltinDef {
            name: "<",
            func: compare::lt,
        },
        BuiltinDef {
            name: ">",
            func: compare::gt,
        },
        BuiltinDef {
            name: "<=",
            func: compare::le,
        },
        BuiltinDef {
            name: ">=",
            func: compare::ge,
        },
        BuiltinDef {
            name: "eq",
            func: compare::eq_identity,
        },
        BuiltinDef {
            name: "equal",
            func: compare::equal_deep,
        },
        // Lists
        BuiltinDef {
            name: "car",
            func: lists::car,
        },
        BuiltinDef {
            name: "cdr",
            func: lists::cdr,
        },
        BuiltinDef {
            name: "cons",
            func: lists::cons,
        },
        BuiltinDef {
            name: "list",
            func: lists::list,
        },
        BuiltinDef {
            name: "append",
            func: lists::append,
        },
        BuiltinDef {
            name: "length",
            func: lists::length,
        },
        BuiltinDef {
            name: "reverse",
            func: lists::reverse,
        },
        BuiltinDef {
            name: "nth",
            func: lists::nth,
        },
        // Control
        BuiltinDef {
            name: "if",
            func: control::if_,
        },
        BuiltinDef {
            name: "cond",
            func: control::cond,
        },
        BuiltinDef {
            name: "progn",
            func: control::progn,
        },
        BuiltinDef {
            name: "when",
            func: control::when,
        },
        BuiltinDef {
            name: "unless",
            func: control::unless,
        },
        BuiltinDef {
            name: "while",
            func: control::while_,
        },
        BuiltinDef {
            name: "quote",
            func: control::quote,
        },
        BuiltinDef {
            name: "quasiquote",
            func: quasi::quasiquote,
        },
        BuiltinDef {
            name: "unquote",
            func: quasi::unquote_outside,
        },
        BuiltinDef {
            name: "unquote-splicing",
            func: quasi::unquote_outside,
        },
        BuiltinDef {
            name: "eval",
            func: control::eval_fn,
        },
        // Definitions
        BuiltinDef {
            name: "defun",
            func: defs::defun,
        },
        BuiltinDef {
            name: "defmacro",
            func: defs::defmacro,
        },
        BuiltinDef {
            name: "lambda",
            func: defs::lambda,
        },
        BuiltinDef {
            name: "let",
            func: defs::let_,
        },
        BuiltinDef {
            name: "let*",
            func: defs::let_star,
        },
        BuiltinDef {
            name: "setq",
            func: defs::setq,
        },
        // Logic
        BuiltinDef {
            name: "and",
            func: logic::and,
        },
        BuiltinDef {
            name: "or",
            func: logic::or,
        },
        BuiltinDef {
            name: "not",
            func: logic::not,
        },
        // Predicates
        BuiltinDef {
            name: "atom",
            func: predicates::atom,
        },
        BuiltinDef {
            name: "null",
            func: predicates::null,
        },
        BuiltinDef {
            name: "listp",
            func: predicates::listp,
        },
        BuiltinDef {
            name: "consp",
            func: predicates::consp,
        },
        BuiltinDef {
            name: "numberp",
            func: predicates::numberp,
        },
        BuiltinDef {
            name: "symbolp",
            func: predicates::symbolp,
        },
        BuiltinDef {
            name: "stringp",
            func: predicates::stringp,
        },
        BuiltinDef {
            name: "zerop",
            func: predicates::zerop,
        },
        // Extended math
        BuiltinDef {
            name: "1+",
            func: math::inc,
        },
        BuiltinDef {
            name: "1-",
            func: math::dec,
        },
        BuiltinDef {
            name: "sqrt",
            func: math::sqrt,
        },
        BuiltinDef {
            name: "expt",
            func: math::expt,
        },
        BuiltinDef {
            name: "floor",
            func: math::floor,
        },
        BuiltinDef {
            name: "ceiling",
            func: math::ceiling,
        },
        BuiltinDef {
            name: "truncate",
            func: math::truncate,
        },
        BuiltinDef {
            name: "float",
            func: math::float,
        },
        BuiltinDef {
            name: "integerp",
            func: math::integerp,
        },
        BuiltinDef {
            name: "floatp",
            func: math::floatp,
        },
        BuiltinDef {
            name: "evenp",
            func: math::evenp,
        },
        BuiltinDef {
            name: "oddp",
            func: math::oddp,
        },
        // Higher-order & search
        BuiltinDef {
            name: "mapcar",
            func: higher::mapcar,
        },
        BuiltinDef {
            name: "apply",
            func: higher::apply,
        },
        BuiltinDef {
            name: "funcall",
            func: higher::funcall,
        },
        BuiltinDef {
            name: "assoc",
            func: higher::assoc,
        },
        BuiltinDef {
            name: "member",
            func: higher::member,
        },
        BuiltinDef {
            name: "last",
            func: higher::last,
        },
        BuiltinDef {
            name: "butlast",
            func: higher::butlast,
        },
        // Iteration
        BuiltinDef {
            name: "dotimes",
            func: iter::dotimes,
        },
        BuiltinDef {
            name: "dolist",
            func: iter::dolist,
        },
        // Strings
        BuiltinDef {
            name: "concat",
            func: strfns::concat,
        },
        BuiltinDef {
            name: "string-length",
            func: strfns::string_length,
        },
        BuiltinDef {
            name: "substring",
            func: strfns::substring,
        },
        BuiltinDef {
            name: "string=",
            func: strfns::string_eq,
        },
        BuiltinDef {
            name: "number-to-string",
            func: strfns::number_to_string,
        },
        BuiltinDef {
            name: "string-to-number",
            func: strfns::string_to_number,
        },
        // File I/O over the host link (the paper's future-work feature)
        BuiltinDef {
            name: "read-file",
            func: io::read_file,
        },
        BuiltinDef {
            name: "write-file",
            func: io::write_file,
        },
        BuiltinDef {
            name: "file-exists",
            func: io::file_exists,
        },
        // Parallelism — the paper's |||-expression
        BuiltinDef {
            name: "|||",
            func: parallel::par,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let mut reg = Registry::new();
        let defs = all_builtins();
        for def in defs {
            reg.register(def);
        }
        assert_eq!(reg.count(), defs.len());
        for (i, def) in defs.iter().enumerate() {
            assert_eq!(reg.name(BuiltinId::new(i)), def.name);
        }
    }

    #[test]
    fn builtin_names_are_unique() {
        let defs = all_builtins();
        let mut names: Vec<&str> = defs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), defs.len(), "duplicate builtin name");
    }

    #[test]
    fn paper_mentioned_builtins_present() {
        // The paper names these explicitly: +, -, defun, cdr, let, setq, |||.
        let names: Vec<&str> = all_builtins().iter().map(|d| d.name).collect();
        for required in ["+", "-", "defun", "cdr", "let", "setq", "|||"] {
            assert!(names.contains(&required), "{required} missing");
        }
    }
}
