//! List built-ins: `car cdr cons list append length reverse nth`.
//!
//! Lists are the linked node chains of paper Fig. 2; `car`/`cdr` are the
//! access primitives the paper names as the reason linked lists are "the
//! natural data structure to use". `cdr` and `cons` share structure
//! (immutable children make that safe) and are O(1), like the C original.

use super::util::{as_list_children, as_num, eval_args, expect_exact, list_from_values, nil, Num};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// `(car lst)` — first element; `(car nil)` and `(car ())` are nil.
pub fn car(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("car", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let kids = as_list_children(interp, values[0], "car")?;
    match kids.first() {
        Some(&first) => Ok(first),
        None => nil(interp),
    }
}

/// `(cdr lst)` — everything after the first element, sharing the original
/// chain (O(1)); nil when fewer than two elements remain.
pub fn cdr(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("cdr", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let node = interp.arena.read(values[0], &mut interp.meter);
    let (first, last) = match node.payload {
        Payload::List { first, last } => (first, last),
        Payload::Empty if node.ty == NodeType::Nil => (None, None),
        _ => return Err(CuliError::Type { builtin: "cdr", expected: "a list" }),
    };
    let Some(first) = first else { return nil(interp) };
    let second = interp.arena.get(first).next;
    match second {
        Some(second) => interp.alloc(Node {
            ty: NodeType::List,
            payload: Payload::List { first: Some(second), last },
            next: None,
        }),
        None => nil(interp),
    }
}

/// `(cons x lst)` — new list with `x` prepended, sharing `lst`'s chain
/// (O(1)). `lst` may be nil. Dotted pairs are not supported (CuLi lists are
/// proper lists).
pub fn cons(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("cons", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let tail = interp.arena.read(values[1], &mut interp.meter);
    let (tfirst, tlast) = match tail.payload {
        Payload::List { first, last } => (first, last),
        Payload::Empty if tail.ty == NodeType::Nil => (None, None),
        _ => return Err(CuliError::Type { builtin: "cons", expected: "a list as second argument" }),
    };
    // Fresh head node whose `next` points into the shared tail chain.
    let head_src = *interp.arena.get(values[0]);
    let head = interp.alloc(Node { ty: head_src.ty, payload: head_src.payload, next: tfirst })?;
    interp.alloc(Node {
        ty: NodeType::List,
        payload: Payload::List { first: Some(head), last: Some(tlast.unwrap_or(head)) },
        next: None,
    })
}

/// `(list a b …)` — list of the evaluated arguments.
pub fn list(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let values = eval_args(interp, hook, args, env, depth)?;
    list_from_values(interp, &values)
}

/// `(append l1 l2 …)` — concatenation (shallow element copies).
pub fn append(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let values = eval_args(interp, hook, args, env, depth)?;
    let mut all = Vec::new();
    for v in &values {
        all.extend(as_list_children(interp, *v, "append")?);
    }
    list_from_values(interp, &all)
}

/// `(length lst)`.
pub fn length(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("length", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let kids = as_list_children(interp, values[0], "length")?;
    interp.alloc(Node::int(kids.len() as i64))
}

/// `(reverse lst)` — reversed shallow copy.
pub fn reverse(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("reverse", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let mut kids = as_list_children(interp, values[0], "reverse")?;
    kids.reverse();
    list_from_values(interp, &kids)
}

/// `(nth i lst)` — zero-based element access; nil past the end.
pub fn nth(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("nth", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let idx = match as_num(interp, values[0], "nth")? {
        Num::I(v) if v >= 0 => v as usize,
        _ => return Err(CuliError::Type { builtin: "nth", expected: "a non-negative integer index" }),
    };
    let kids = as_list_children(interp, values[1], "nth")?;
    match kids.get(idx) {
        Some(&k) => Ok(k),
        None => nil(interp),
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn car_cdr_basics() {
        assert_eq!(run("(car (list 1 2 3))"), "1");
        assert_eq!(run("(cdr (list 1 2 3))"), "(2 3)");
        assert_eq!(run("(car nil)"), "nil");
        assert_eq!(run("(cdr nil)"), "nil");
        assert_eq!(run("(cdr (list 1))"), "nil");
        assert_eq!(run("(car (cdr (list 1 2 3)))"), "2");
    }

    #[test]
    fn car_cdr_on_quoted_lists() {
        assert_eq!(run("(car '(a b))"), "a");
        assert_eq!(run("(cdr '(a b c))"), "(b c)");
    }

    #[test]
    fn cons_prepends_and_shares() {
        assert_eq!(run("(cons 1 (list 2 3))"), "(1 2 3)");
        assert_eq!(run("(cons 1 nil)"), "(1)");
        assert_eq!(run("(cons (list 1) (list 2))"), "((1) 2)");
    }

    #[test]
    fn cons_does_not_mutate_tail() {
        let mut i = Interp::default();
        i.eval_str("(setq tail (list 2 3))").unwrap();
        assert_eq!(i.eval_str("(cons 1 tail)").unwrap(), "(1 2 3)");
        assert_eq!(i.eval_str("tail").unwrap(), "(2 3)", "shared tail unchanged");
        assert_eq!(i.eval_str("(cons 0 tail)").unwrap(), "(0 2 3)");
    }

    #[test]
    fn list_evaluates_arguments() {
        assert_eq!(run("(list (+ 1 1) (+ 2 2))"), "(2 4)");
        assert_eq!(run("(list)"), "()");
    }

    #[test]
    fn append_concatenates() {
        assert_eq!(run("(append (list 1 2) (list 3) (list 4 5))"), "(1 2 3 4 5)");
        assert_eq!(run("(append nil (list 1))"), "(1)");
        assert_eq!(run("(append)"), "()");
    }

    #[test]
    fn length_reverse_nth() {
        assert_eq!(run("(length (list 1 2 3))"), "3");
        assert_eq!(run("(length nil)"), "0");
        assert_eq!(run("(reverse (list 1 2 3))"), "(3 2 1)");
        assert_eq!(run("(nth 0 (list 10 20))"), "10");
        assert_eq!(run("(nth 1 (list 10 20))"), "20");
        assert_eq!(run("(nth 5 (list 10 20))"), "nil");
    }

    #[test]
    fn type_errors() {
        let mut i = Interp::default();
        assert!(matches!(i.eval_str("(car 5)").unwrap_err(), CuliError::Type { .. }));
        assert!(matches!(i.eval_str("(cons 1 2)").unwrap_err(), CuliError::Type { .. }));
        assert!(matches!(i.eval_str("(nth -1 (list 1))").unwrap_err(), CuliError::Type { .. }));
    }
}
