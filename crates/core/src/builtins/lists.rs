//! List built-ins: `car cdr cons list append length reverse nth`.
//!
//! Lists are the linked node chains of paper Fig. 2; `car`/`cdr` are the
//! access primitives the paper names as the reason linked lists are "the
//! natural data structure to use". `cdr` and `cons` share structure
//! (immutable children make that safe) and are O(1), like the C original.

use super::util::{
    as_num, eval_args_scratch, expect_exact, list_first, list_from_values, nil, Num,
};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// `(car lst)` — first element; `(car nil)` and `(car ())` are nil.
pub fn car(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("car", args, 1)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let value = values[0];
    interp.put_node_buf(values);
    match list_first(interp, value, "car")? {
        Some(first) => Ok(first),
        None => nil(interp),
    }
}

/// `(cdr lst)` — everything after the first element, sharing the original
/// chain (O(1)); nil when fewer than two elements remain.
pub fn cdr(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("cdr", args, 1)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let value = values[0];
    interp.put_node_buf(values);
    let node = interp.arena.read(value, &mut interp.meter);
    let (first, last) = match node.payload {
        Payload::List { first, last } => (first, last),
        Payload::Empty if node.ty == NodeType::Nil => (None, None),
        _ => {
            return Err(CuliError::Type {
                builtin: "cdr",
                expected: "a list",
            })
        }
    };
    let Some(first) = first else {
        return nil(interp);
    };
    let second = interp.arena.get(first).next;
    match second {
        Some(second) => interp.alloc(Node {
            ty: NodeType::List,
            payload: Payload::List {
                first: Some(second),
                last,
            },
            next: None,
        }),
        None => nil(interp),
    }
}

/// `(cons x lst)` — new list with `x` prepended, sharing `lst`'s chain
/// (O(1)). `lst` may be nil. Dotted pairs are not supported (CuLi lists are
/// proper lists).
pub fn cons(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("cons", args, 2)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let (head_id, tail_id) = (values[0], values[1]);
    interp.put_node_buf(values);
    let tail = interp.arena.read(tail_id, &mut interp.meter);
    let (tfirst, tlast) = match tail.payload {
        Payload::List { first, last } => (first, last),
        Payload::Empty if tail.ty == NodeType::Nil => (None, None),
        _ => {
            return Err(CuliError::Type {
                builtin: "cons",
                expected: "a list as second argument",
            })
        }
    };
    // Fresh head node whose `next` points into the shared tail chain.
    let head_src = *interp.arena.get(head_id);
    let head = interp.alloc(Node {
        ty: head_src.ty,
        payload: head_src.payload,
        next: tfirst,
    })?;
    interp.alloc(Node {
        ty: NodeType::List,
        payload: Payload::List {
            first: Some(head),
            last: Some(tlast.unwrap_or(head)),
        },
        next: None,
    })
}

/// `(list a b …)` — list of the evaluated arguments.
pub fn list(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let result = list_from_values(interp, &values);
    interp.put_node_buf(values);
    result
}

/// `(append l1 l2 …)` — concatenation (shallow element copies).
pub fn append(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let mut all = interp.take_node_buf();
    for &v in &values {
        // Validate the element is a list, then splice its children in
        // without an intermediate vector.
        if let Err(e) = list_first(interp, v, "append") {
            interp.put_node_buf(values);
            interp.put_node_buf(all);
            return Err(e);
        }
        if interp.arena.get(v).ty != NodeType::Nil {
            interp.arena.list_children_into(v, &mut all);
        }
    }
    interp.put_node_buf(values);
    let result = list_from_values(interp, &all);
    interp.put_node_buf(all);
    result
}

/// `(length lst)`.
pub fn length(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("length", args, 1)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let value = values[0];
    interp.put_node_buf(values);
    let len = match list_first(interp, value, "length")? {
        Some(_) => interp.arena.list_len(value),
        None => 0,
    };
    interp.alloc(Node::int(len as i64))
}

/// `(reverse lst)` — reversed shallow copy.
pub fn reverse(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("reverse", args, 1)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let value = values[0];
    interp.put_node_buf(values);
    let mut kids = interp.take_node_buf();
    if let Err(e) = list_first(interp, value, "reverse") {
        interp.put_node_buf(kids);
        return Err(e);
    }
    if interp.arena.get(value).ty != NodeType::Nil {
        interp.arena.list_children_into(value, &mut kids);
    }
    kids.reverse();
    let result = list_from_values(interp, &kids);
    interp.put_node_buf(kids);
    result
}

/// `(nth i lst)` — zero-based element access; nil past the end.
pub fn nth(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("nth", args, 2)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let (idx_id, list_id) = (values[0], values[1]);
    interp.put_node_buf(values);
    let idx = match as_num(interp, idx_id, "nth")? {
        Num::I(v) if v >= 0 => v as usize,
        _ => {
            return Err(CuliError::Type {
                builtin: "nth",
                expected: "a non-negative integer index",
            })
        }
    };
    list_first(interp, list_id, "nth")?;
    let found = if interp.arena.get(list_id).ty == NodeType::Nil {
        None
    } else {
        interp.arena.iter_list(list_id).nth(idx)
    };
    match found {
        Some(k) => Ok(k),
        None => nil(interp),
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn car_cdr_basics() {
        assert_eq!(run("(car (list 1 2 3))"), "1");
        assert_eq!(run("(cdr (list 1 2 3))"), "(2 3)");
        assert_eq!(run("(car nil)"), "nil");
        assert_eq!(run("(cdr nil)"), "nil");
        assert_eq!(run("(cdr (list 1))"), "nil");
        assert_eq!(run("(car (cdr (list 1 2 3)))"), "2");
    }

    #[test]
    fn car_cdr_on_quoted_lists() {
        assert_eq!(run("(car '(a b))"), "a");
        assert_eq!(run("(cdr '(a b c))"), "(b c)");
    }

    #[test]
    fn cons_prepends_and_shares() {
        assert_eq!(run("(cons 1 (list 2 3))"), "(1 2 3)");
        assert_eq!(run("(cons 1 nil)"), "(1)");
        assert_eq!(run("(cons (list 1) (list 2))"), "((1) 2)");
    }

    #[test]
    fn cons_does_not_mutate_tail() {
        let mut i = Interp::default();
        i.eval_str("(setq tail (list 2 3))").unwrap();
        assert_eq!(i.eval_str("(cons 1 tail)").unwrap(), "(1 2 3)");
        assert_eq!(
            i.eval_str("tail").unwrap(),
            "(2 3)",
            "shared tail unchanged"
        );
        assert_eq!(i.eval_str("(cons 0 tail)").unwrap(), "(0 2 3)");
    }

    #[test]
    fn list_evaluates_arguments() {
        assert_eq!(run("(list (+ 1 1) (+ 2 2))"), "(2 4)");
        assert_eq!(run("(list)"), "()");
    }

    #[test]
    fn append_concatenates() {
        assert_eq!(
            run("(append (list 1 2) (list 3) (list 4 5))"),
            "(1 2 3 4 5)"
        );
        assert_eq!(run("(append nil (list 1))"), "(1)");
        assert_eq!(run("(append)"), "()");
    }

    #[test]
    fn length_reverse_nth() {
        assert_eq!(run("(length (list 1 2 3))"), "3");
        assert_eq!(run("(length nil)"), "0");
        assert_eq!(run("(reverse (list 1 2 3))"), "(3 2 1)");
        assert_eq!(run("(nth 0 (list 10 20))"), "10");
        assert_eq!(run("(nth 1 (list 10 20))"), "20");
        assert_eq!(run("(nth 5 (list 10 20))"), "nil");
    }

    #[test]
    fn type_errors() {
        let mut i = Interp::default();
        assert!(matches!(
            i.eval_str("(car 5)").unwrap_err(),
            CuliError::Type { .. }
        ));
        assert!(matches!(
            i.eval_str("(cons 1 2)").unwrap_err(),
            CuliError::Type { .. }
        ));
        assert!(matches!(
            i.eval_str("(nth -1 (list 1))").unwrap_err(),
            CuliError::Type { .. }
        ));
    }
}
