//! String built-ins — exercising the hand-rolled string library from Lisp.
//!
//! `concat string-length substring string= number-to-string
//! string-to-number`. The C original ships its own string routines because
//! CUDA has none; these builtins are the Lisp-visible face of that library.

use super::util::{as_num, eval_args, expect_exact, expect_min, Num};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId, StrId};
use culi_strlib::fmt_num::{f64_to_vec, i64_to_vec};
use culi_strlib::parse_num::{classify_number, NumParse};

fn text_of(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<StrId> {
    let n = interp.arena.get(id);
    match (n.ty, n.payload) {
        (NodeType::Str, Payload::Text(s)) => Ok(s),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a string",
        }),
    }
}

/// `(concat s1 s2 …)` — string concatenation.
pub fn concat(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let values = eval_args(interp, hook, args, env, depth)?;
    let mut out = Vec::new();
    for &v in &values {
        let sid = text_of(interp, v, "concat")?;
        out.extend_from_slice(interp.strings.get(sid));
    }
    interp.meter.output_bytes(out.len() as u64);
    let sid = interp.strings.intern(&out);
    interp.alloc(Node::string(sid))
}

/// `(string-length s)`.
pub fn string_length(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("string-length", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let sid = text_of(interp, values[0], "string-length")?;
    let len = interp.strings.len_of(sid) as i64;
    interp.alloc(Node::int(len))
}

/// `(substring s start end)` — byte range, clamped to the string length.
pub fn substring(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("substring", args, 3)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let sid = text_of(interp, values[0], "substring")?;
    let start = non_negative(interp, values[1], "substring")?;
    let end = non_negative(interp, values[2], "substring")?;
    let text = interp.strings.get(sid);
    let len = text.len();
    let start = start.min(len);
    let end = end.clamp(start, len);
    let slice = text[start..end].to_vec();
    let out = interp.strings.intern(&slice);
    interp.alloc(Node::string(out))
}

/// `(string= a b)` — byte-wise string equality.
pub fn string_eq(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("string=", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let a = text_of(interp, values[0], "string=")?;
    let b = text_of(interp, values[1], "string=")?;
    let eq = culi_strlib::cstr::streq(interp.strings.get(a), interp.strings.get(b));
    interp
        .meter
        .symbol_cmp_bytes(interp.strings.len_of(a).min(interp.strings.len_of(b)) as u64 + 1);
    super::util::bool_node(interp, eq)
}

/// `(number-to-string n)` — hand-rolled itoa/dtoa.
pub fn number_to_string(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("number-to-string", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    interp.meter.number_format();
    let bytes = match as_num(interp, values[0], "number-to-string")? {
        Num::I(v) => i64_to_vec(v),
        Num::F(v) => f64_to_vec(v),
    };
    let sid = interp.strings.intern(&bytes);
    interp.alloc(Node::string(sid))
}

/// `(string-to-number s)` — parses ints and floats; nil when unparsable.
pub fn string_to_number(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("string-to-number", args, 1)?;
    expect_exact("string-to-number", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let sid = text_of(interp, values[0], "string-to-number")?;
    let text = interp.strings.get(sid).to_vec();
    match classify_number(&text) {
        NumParse::Int(v) => interp.alloc(Node::int(v)),
        NumParse::Float(v) => interp.alloc(Node::float(v)),
        NumParse::NotANumber => interp.alloc(Node::nil()),
    }
}

fn non_negative(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<usize> {
    match interp.arena.get(id).payload {
        Payload::Int(v) if v >= 0 => Ok(v as usize),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a non-negative integer",
        }),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn concat_joins() {
        assert_eq!(run("(concat \"foo\" \"bar\")"), "\"foobar\"");
        assert_eq!(run("(concat)"), "\"\"");
    }

    #[test]
    fn string_length_counts_bytes() {
        assert_eq!(run("(string-length \"hello\")"), "5");
        assert_eq!(run("(string-length \"\")"), "0");
    }

    #[test]
    fn substring_clamps() {
        assert_eq!(run("(substring \"hello\" 1 3)"), "\"el\"");
        assert_eq!(run("(substring \"hello\" 0 99)"), "\"hello\"");
        assert_eq!(run("(substring \"hello\" 4 2)"), "\"\"");
    }

    #[test]
    fn string_equality() {
        assert_eq!(run("(string= \"a\" \"a\")"), "T");
        assert_eq!(run("(string= \"a\" \"b\")"), "nil");
    }

    #[test]
    fn number_string_roundtrip() {
        assert_eq!(run("(number-to-string 42)"), "\"42\"");
        assert_eq!(run("(number-to-string 1.5)"), "\"1.5\"");
        assert_eq!(run("(string-to-number \"42\")"), "42");
        assert_eq!(run("(string-to-number \"1.5\")"), "1.5");
        assert_eq!(run("(string-to-number \"xyz\")"), "nil");
    }

    #[test]
    fn type_errors() {
        assert!(Interp::default().eval_str("(concat 5)").is_err());
        assert!(Interp::default().eval_str("(string-length 5)").is_err());
    }
}
