//! Shared helpers for built-in implementations.

use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// A number as builtins see it: CuLi is int-preserving but promotes to
/// float the moment any float participates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// Exact integer.
    I(i64),
    /// IEEE double.
    F(f64),
}

impl Num {
    /// The value as `f64` (exact for every `i64` the workloads use).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }
}

/// Evaluates every argument in order.
pub fn eval_args(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<Vec<NodeId>> {
    let mut out = Vec::with_capacity(args.len());
    for &a in args {
        out.push(eval(interp, hook, a, env, depth + 1)?);
    }
    Ok(out)
}

/// Evaluates every argument in order into a pooled scratch buffer. The
/// caller must hand the buffer back with [`Interp::put_node_buf`] once the
/// values are consumed; hot builtins use this to stay allocation-free in
/// steady state.
pub fn eval_args_scratch(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<Vec<NodeId>> {
    let mut out = interp.take_node_buf();
    for &a in args {
        match eval(interp, hook, a, env, depth + 1) {
            Ok(v) => out.push(v),
            Err(e) => {
                interp.put_node_buf(out);
                return Err(e);
            }
        }
    }
    Ok(out)
}

/// Reads a node as a number or reports a type error for `builtin`.
pub fn as_num(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<Num> {
    match interp.arena.get(id).payload {
        Payload::Int(v) => Ok(Num::I(v)),
        Payload::Float(v) => Ok(Num::F(v)),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a number",
        }),
    }
}

/// Allocates a node holding `n`.
pub fn num_node(interp: &mut Interp, n: Num) -> Result<NodeId> {
    match n {
        Num::I(v) => interp.alloc(Node::int(v)),
        Num::F(v) => interp.alloc(Node::float(v)),
    }
}

/// Allocates a nil node.
pub fn nil(interp: &mut Interp) -> Result<NodeId> {
    interp.alloc(Node::nil())
}

/// Allocates `T` or `nil` from a Rust bool.
pub fn bool_node(interp: &mut Interp, b: bool) -> Result<NodeId> {
    if b {
        interp.alloc(Node::truth())
    } else {
        interp.alloc(Node::nil())
    }
}

/// Lisp truthiness of the node behind `id`.
pub fn is_truthy(interp: &Interp, id: NodeId) -> bool {
    interp.arena.get(id).is_truthy()
}

/// Errors unless exactly `n` arguments were supplied.
pub fn expect_exact(builtin: &'static str, args: &[NodeId], n: usize) -> Result<()> {
    if args.len() != n {
        return Err(CuliError::Arity {
            builtin,
            expected: exact_name(n),
            got: args.len(),
        });
    }
    Ok(())
}

/// Errors unless at least `n` arguments were supplied.
pub fn expect_min(builtin: &'static str, args: &[NodeId], n: usize) -> Result<()> {
    if args.len() < n {
        return Err(CuliError::Arity {
            builtin,
            expected: min_name(n),
            got: args.len(),
        });
    }
    Ok(())
}

fn exact_name(n: usize) -> &'static str {
    match n {
        0 => "exactly 0",
        1 => "exactly 1",
        2 => "exactly 2",
        3 => "exactly 3",
        _ => "a fixed count of",
    }
}

fn min_name(n: usize) -> &'static str {
    match n {
        1 => "at least 1",
        2 => "at least 2",
        3 => "at least 3",
        _ => "more",
    }
}

/// Builds a fresh list node whose children are shallow copies of `values`.
pub fn list_from_values(interp: &mut Interp, values: &[NodeId]) -> Result<NodeId> {
    let list = interp.alloc(Node::empty_list())?;
    for &v in values {
        let copy = interp.copy_for_list(v)?;
        interp.arena.list_append(list, copy);
    }
    Ok(list)
}

/// Validates that `id` is a list (or nil, treated as the empty list) and
/// returns its first child without allocating — `None` for an empty list.
/// Hot builtins pair this with [`crate::arena::NodeArena::iter_list`] to
/// traverse the sibling chain directly.
pub fn list_first(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<Option<NodeId>> {
    let n = interp.arena.get(id);
    match n.ty {
        NodeType::List | NodeType::Expression => match n.payload {
            Payload::List { first, .. } => Ok(first),
            _ => Ok(None),
        },
        NodeType::Nil => Ok(None),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a list",
        }),
    }
}

/// Reads a node as a list (or nil, treated as the empty list), returning
/// its children.
pub fn as_list_children(interp: &Interp, id: NodeId, builtin: &'static str) -> Result<Vec<NodeId>> {
    let n = interp.arena.get(id);
    match n.ty {
        NodeType::List | NodeType::Expression => Ok(interp.arena.list_children(id)),
        NodeType::Nil => Ok(Vec::new()),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a list",
        }),
    }
}
