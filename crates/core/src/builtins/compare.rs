//! Comparison built-ins: numeric ordering chains, `eq`, `equal`.

use super::util::{as_num, bool_node, eval_args, eval_args_scratch, expect_exact, expect_min};
use crate::error::Result;
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::{NodeType, Payload};
use crate::types::{EnvId, NodeId};

fn chain(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
    pred: fn(f64, f64) -> bool,
) -> Result<NodeId> {
    expect_min(name, args, 2)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let result = chain_values(interp, &values, name, pred);
    interp.put_node_buf(values);
    result
}

fn chain_values(
    interp: &mut Interp,
    values: &[NodeId],
    name: &'static str,
    pred: fn(f64, f64) -> bool,
) -> Result<NodeId> {
    let mut prev = as_num(interp, values[0], name)?.as_f64();
    for &v in &values[1..] {
        let cur = as_num(interp, v, name)?.as_f64();
        interp.meter.arith_op();
        if !pred(prev, cur) {
            return bool_node(interp, false);
        }
        prev = cur;
    }
    bool_node(interp, true)
}

/// `(= a b …)` — numeric equality chain.
pub fn num_eq(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    chain(interp, hook, args, env, depth, "=", |a, b| a == b)
}

/// `(/= a b …)` — true when **no two** of the numbers are equal (pairwise,
/// like Common Lisp).
pub fn num_ne(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("/=", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let mut nums = Vec::with_capacity(values.len());
    for v in &values {
        nums.push(as_num(interp, *v, "/=")?.as_f64());
    }
    for i in 0..nums.len() {
        for j in i + 1..nums.len() {
            interp.meter.arith_op();
            if nums[i] == nums[j] {
                return bool_node(interp, false);
            }
        }
    }
    bool_node(interp, true)
}

/// `(< a b …)`.
pub fn lt(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    chain(interp, hook, args, env, depth, "<", |a, b| a < b)
}

/// `(> a b …)`.
pub fn gt(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    chain(interp, hook, args, env, depth, ">", |a, b| a > b)
}

/// `(<= a b …)`.
pub fn le(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    chain(interp, hook, args, env, depth, "<=", |a, b| a <= b)
}

/// `(>= a b …)`.
pub fn ge(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    chain(interp, hook, args, env, depth, ">=", |a, b| a >= b)
}

/// `(eq a b)` — identity-style equality: same node, or same primitive
/// value. Interned strings/symbols with identical text compare equal (the
/// table dedups them).
pub fn eq_identity(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("eq", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    interp.meter.arith_op();
    if values[0] == values[1] {
        return bool_node(interp, true);
    }
    let a = interp.arena.get(values[0]);
    let b = interp.arena.get(values[1]);
    let same = a.ty == b.ty
        && match (a.payload, b.payload) {
            (Payload::Empty, Payload::Empty) => true,
            (Payload::Int(x), Payload::Int(y)) => x == y,
            (Payload::Float(x), Payload::Float(y)) => x == y,
            (Payload::Text(x), Payload::Text(y)) => x == y,
            (Payload::Builtin(x), Payload::Builtin(y)) => x == y,
            _ => false,
        };
    bool_node(interp, same)
}

/// `(equal a b)` — deep structural equality.
pub fn equal_deep(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("equal", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let eq = deep_eq(interp, values[0], values[1]);
    bool_node(interp, eq)
}

/// Structural equality over node trees (public for tests and the runtime's
/// result validation).
pub fn deep_eq(interp: &mut Interp, a: NodeId, b: NodeId) -> bool {
    interp.meter.arith_op();
    if a == b {
        return true;
    }
    let na = *interp.arena.get(a);
    let nb = *interp.arena.get(b);
    let lists = |t: NodeType| matches!(t, NodeType::List | NodeType::Expression);
    if lists(na.ty) && lists(nb.ty) {
        let ka = interp.arena.list_children(a);
        let kb = interp.arena.list_children(b);
        return ka.len() == kb.len() && ka.iter().zip(&kb).all(|(&x, &y)| deep_eq(interp, x, y));
    }
    if na.ty != nb.ty {
        return false;
    }
    match (na.payload, nb.payload) {
        (Payload::Empty, Payload::Empty) => true,
        (Payload::Int(x), Payload::Int(y)) => x == y,
        (Payload::Float(x), Payload::Float(y)) => x == y,
        (Payload::Text(x), Payload::Text(y)) => x == y,
        (Payload::Builtin(x), Payload::Builtin(y)) => x == y,
        (
            Payload::Form {
                params: pa,
                body: ba,
            },
            Payload::Form {
                params: pb,
                body: bb,
            },
        ) => pa == pb && ba == bb,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn ordering_chains() {
        assert_eq!(run("(< 1 2 3)"), "T");
        assert_eq!(run("(< 1 3 2)"), "nil");
        assert_eq!(run("(> 3 2 1)"), "T");
        assert_eq!(run("(<= 1 1 2)"), "T");
        assert_eq!(run("(>= 2 2 1)"), "T");
        assert_eq!(run("(< 1 1)"), "nil");
    }

    #[test]
    fn numeric_equality_mixed_types() {
        assert_eq!(run("(= 1 1)"), "T");
        assert_eq!(run("(= 1 1.0)"), "T", "int and float compare numerically");
        assert_eq!(run("(= 1 2)"), "nil");
        assert_eq!(run("(= 2 2 2)"), "T");
    }

    #[test]
    fn pairwise_inequality() {
        assert_eq!(run("(/= 1 2 3)"), "T");
        assert_eq!(run("(/= 1 2 1)"), "nil", "first and third equal");
    }

    #[test]
    fn eq_on_primitives_and_symbols() {
        assert_eq!(run("(eq 1 1)"), "T");
        assert_eq!(run("(eq 'a 'a)"), "T");
        assert_eq!(run("(eq 'a 'b)"), "nil");
        assert_eq!(run("(eq nil nil)"), "T");
        assert_eq!(run("(eq \"x\" \"x\")"), "T", "interned strings share ids");
        assert_eq!(
            run("(eq (list 1 2) (list 1 2))"),
            "nil",
            "distinct list nodes"
        );
    }

    #[test]
    fn equal_is_structural() {
        assert_eq!(run("(equal (list 1 2) (list 1 2))"), "T");
        assert_eq!(run("(equal (list 1 (list 2 3)) (list 1 (list 2 3)))"), "T");
        assert_eq!(run("(equal (list 1 2) (list 1 3))"), "nil");
        assert_eq!(run("(equal (list 1 2) (list 1 2 3))"), "nil");
        assert_eq!(run("(equal 5 5)"), "T");
        assert_eq!(run("(equal 5 5.0)"), "nil", "equal is type-strict");
    }

    #[test]
    fn comparisons_need_numbers() {
        let e = Interp::default().eval_str("(< 'a 1)").unwrap_err();
        assert!(matches!(e, CuliError::Type { .. }));
    }

    #[test]
    fn arity_enforced() {
        let e = Interp::default().eval_str("(< 1)").unwrap_err();
        assert!(matches!(e, CuliError::Arity { .. }));
    }
}
