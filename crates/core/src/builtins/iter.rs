//! Iteration built-ins: `dotimes` and `dolist`.
//!
//! Both receive their bodies unevaluated and re-evaluate them per
//! iteration; the loop variable is bound in a fresh child environment so
//! it disappears after the loop (unlike the paper-style `let`, which binds
//! into the current environment).

use super::util::{as_list_children, expect_min, nil};
use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId, StrId};

fn loop_header(interp: &Interp, head: NodeId, builtin: &'static str) -> Result<(StrId, NodeId)> {
    let parts = match interp.arena.get(head).ty {
        NodeType::List => interp.arena.list_children(head),
        _ => {
            return Err(CuliError::Type {
                builtin,
                expected: "a (var source) header",
            })
        }
    };
    if parts.len() != 2 {
        return Err(CuliError::Type {
            builtin,
            expected: "a (var source) header",
        });
    }
    match (
        interp.arena.get(parts[0]).ty,
        interp.arena.get(parts[0]).payload,
    ) {
        (NodeType::Symbol, Payload::Text(sym)) => Ok((sym, parts[1])),
        _ => Err(CuliError::Type {
            builtin,
            expected: "a symbol loop variable",
        }),
    }
}

/// `(dotimes (i n) body…)` — evaluate the body with `i` = 0..n-1; nil.
pub fn dotimes(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("dotimes", args, 1)?;
    let (var, count_expr) = loop_header(interp, args[0], "dotimes")?;
    let count_val = eval(interp, hook, count_expr, env, depth + 1)?;
    let count = match interp.arena.get(count_val).payload {
        Payload::Int(v) if v >= 0 => v,
        _ => {
            return Err(CuliError::Type {
                builtin: "dotimes",
                expected: "a non-negative count",
            })
        }
    };
    let loop_env = interp.envs.push(Some(env));
    for i in 0..count {
        let idx = interp.alloc(Node::int(i))?;
        interp.envs.define(loop_env, var, idx, &interp.strings);
        for &body in &args[1..] {
            eval(interp, hook, body, loop_env, depth + 1)?;
        }
    }
    nil(interp)
}

/// `(dolist (x lst) body…)` — evaluate the body once per element; nil.
pub fn dolist(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("dolist", args, 1)?;
    let (var, list_expr) = loop_header(interp, args[0], "dolist")?;
    let list_val = eval(interp, hook, list_expr, env, depth + 1)?;
    let items = as_list_children(interp, list_val, "dolist")?;
    let loop_env = interp.envs.push(Some(env));
    for item in items {
        interp.envs.define(loop_env, var, item, &interp.strings);
        for &body in &args[1..] {
            eval(interp, hook, body, loop_env, depth + 1)?;
        }
    }
    nil(interp)
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    #[test]
    fn dotimes_counts() {
        let mut i = Interp::default();
        i.eval_str("(setq acc 0)").unwrap();
        assert_eq!(
            i.eval_str("(dotimes (k 5) (setq acc (+ acc k)))").unwrap(),
            "nil"
        );
        assert_eq!(i.eval_str("acc").unwrap(), "10");
    }

    #[test]
    fn dotimes_zero_skips_body() {
        let mut i = Interp::default();
        i.eval_str("(setq hit nil)").unwrap();
        i.eval_str("(dotimes (k 0) (setq hit T))").unwrap();
        assert_eq!(i.eval_str("hit").unwrap(), "nil");
    }

    #[test]
    fn dolist_walks_elements() {
        let mut i = Interp::default();
        i.eval_str("(setq acc 1)").unwrap();
        i.eval_str("(dolist (x (list 2 3 7)) (setq acc (* acc x)))")
            .unwrap();
        assert_eq!(i.eval_str("acc").unwrap(), "42");
    }

    #[test]
    fn loop_variable_stays_scoped() {
        let mut i = Interp::default();
        i.eval_str("(dotimes (k 3) k)").unwrap();
        assert_eq!(i.eval_str("k").unwrap(), "k", "k unbound after the loop");
    }

    #[test]
    fn headers_are_validated() {
        let mut i = Interp::default();
        assert!(i.eval_str("(dotimes 5 1)").is_err());
        assert!(i.eval_str("(dotimes (k) 1)").is_err());
        assert!(i.eval_str("(dotimes (k -1) 1)").is_err());
        assert!(i.eval_str("(dolist (5 (list 1)) 1)").is_err());
    }
}
