//! Extended numeric built-ins: `1+ 1- sqrt expt floor ceiling truncate
//! float integerp floatp evenp oddp`.

use super::util::{as_num, bool_node, eval_args, expect_exact, num_node, Num};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::Payload;
use crate::types::{EnvId, NodeId};

fn one_num(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
) -> Result<Num> {
    expect_exact(name, args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    interp.meter.arith_op();
    as_num(interp, values[0], name)
}

/// `(1+ n)` — increment.
pub fn inc(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    match one_num(interp, hook, args, env, depth, "1+")? {
        Num::I(v) => num_node(
            interp,
            Num::I(v.checked_add(1).ok_or(CuliError::IntOverflow)?),
        ),
        Num::F(v) => num_node(interp, Num::F(v + 1.0)),
    }
}

/// `(1- n)` — decrement.
pub fn dec(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    match one_num(interp, hook, args, env, depth, "1-")? {
        Num::I(v) => num_node(
            interp,
            Num::I(v.checked_sub(1).ok_or(CuliError::IntOverflow)?),
        ),
        Num::F(v) => num_node(interp, Num::F(v - 1.0)),
    }
}

/// `(sqrt n)` — always a float (CuLi has no exact roots).
pub fn sqrt(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_num(interp, hook, args, env, depth, "sqrt")?.as_f64();
    num_node(interp, Num::F(v.sqrt()))
}

/// `(expt base power)` — integer power for non-negative integer exponents
/// (checked), float otherwise.
pub fn expt(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("expt", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let base = as_num(interp, values[0], "expt")?;
    let power = as_num(interp, values[1], "expt")?;
    interp.meter.arith_op();
    match (base, power) {
        (Num::I(b), Num::I(p)) if (0..=u32::MAX as i64).contains(&p) => {
            let v = b.checked_pow(p as u32).ok_or(CuliError::IntOverflow)?;
            num_node(interp, Num::I(v))
        }
        (b, p) => num_node(interp, Num::F(b.as_f64().powf(p.as_f64()))),
    }
}

fn rounding(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
    f: fn(f64) -> f64,
) -> Result<NodeId> {
    match one_num(interp, hook, args, env, depth, name)? {
        Num::I(v) => num_node(interp, Num::I(v)),
        Num::F(v) => {
            let r = f(v);
            if r.is_finite() && (i64::MIN as f64..=i64::MAX as f64).contains(&r) {
                num_node(interp, Num::I(r as i64))
            } else {
                Err(CuliError::IntOverflow)
            }
        }
    }
}

/// `(floor n)` — largest integer ≤ n.
pub fn floor(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    rounding(interp, hook, args, env, depth, "floor", f64::floor)
}

/// `(ceiling n)` — smallest integer ≥ n.
pub fn ceiling(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    rounding(interp, hook, args, env, depth, "ceiling", f64::ceil)
}

/// `(truncate n)` — round toward zero.
pub fn truncate(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    rounding(interp, hook, args, env, depth, "truncate", f64::trunc)
}

/// `(float n)` — force float representation.
pub fn float(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let v = one_num(interp, hook, args, env, depth, "float")?.as_f64();
    num_node(interp, Num::F(v))
}

fn type_pred(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
    want_int: bool,
) -> Result<NodeId> {
    expect_exact(name, args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let is = match interp.arena.get(values[0]).payload {
        Payload::Int(_) => want_int,
        Payload::Float(_) => !want_int,
        _ => false,
    };
    bool_node(interp, is)
}

/// `(integerp x)`.
pub fn integerp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    type_pred(interp, hook, args, env, depth, "integerp", true)
}

/// `(floatp x)`.
pub fn floatp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    type_pred(interp, hook, args, env, depth, "floatp", false)
}

fn parity(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
    want_even: bool,
) -> Result<NodeId> {
    match one_num(interp, hook, args, env, depth, name)? {
        Num::I(v) => bool_node(interp, (v % 2 == 0) == want_even),
        Num::F(_) => Err(CuliError::Type {
            builtin: name,
            expected: "an integer",
        }),
    }
}

/// `(evenp n)`.
pub fn evenp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    parity(interp, hook, args, env, depth, "evenp", true)
}

/// `(oddp n)`.
pub fn oddp(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    parity(interp, hook, args, env, depth, "oddp", false)
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn inc_dec() {
        assert_eq!(run("(1+ 41)"), "42");
        assert_eq!(run("(1- 43)"), "42");
        assert_eq!(run("(1+ 0.5)"), "1.5");
        assert_eq!(
            Interp::default()
                .eval_str("(1+ 9223372036854775807)")
                .unwrap_err(),
            CuliError::IntOverflow
        );
    }

    #[test]
    fn sqrt_and_expt() {
        assert_eq!(run("(sqrt 9)"), "3.0");
        assert_eq!(run("(sqrt 2.25)"), "1.5");
        assert_eq!(run("(expt 2 10)"), "1024");
        assert_eq!(run("(expt 2 -1)"), "0.5");
        assert_eq!(run("(expt 4 0.5)"), "2.0");
        assert_eq!(
            Interp::default().eval_str("(expt 10 99)").unwrap_err(),
            CuliError::IntOverflow
        );
    }

    #[test]
    fn rounding_family() {
        assert_eq!(run("(floor 2.7)"), "2");
        assert_eq!(run("(floor -2.7)"), "-3");
        assert_eq!(run("(ceiling 2.1)"), "3");
        assert_eq!(run("(ceiling -2.1)"), "-2");
        assert_eq!(run("(truncate 2.9)"), "2");
        assert_eq!(run("(truncate -2.9)"), "-2");
        assert_eq!(run("(floor 5)"), "5", "integers pass through");
        assert_eq!(run("(float 3)"), "3.0");
    }

    #[test]
    fn numeric_type_predicates() {
        assert_eq!(run("(integerp 5)"), "T");
        assert_eq!(run("(integerp 5.0)"), "nil");
        assert_eq!(run("(floatp 5.0)"), "T");
        assert_eq!(run("(floatp 'x)"), "nil");
    }

    #[test]
    fn parity() {
        assert_eq!(run("(evenp 4)"), "T");
        assert_eq!(run("(evenp 5)"), "nil");
        assert_eq!(run("(oddp 5)"), "T");
        assert_eq!(run("(oddp -3)"), "T");
        assert!(Interp::default().eval_str("(evenp 1.5)").is_err());
    }
}
