//! Quasiquotation: `` `template `` with `,expr` and `,@list-expr` holes.
//!
//! An extension over the paper's grammar (which only lists "macros" as a
//! feature); without quasiquote, non-trivial `defmacro`s are miserable to
//! write. Semantics follow Common Lisp:
//!
//! * `` `x `` copies the template;
//! * `,e` evaluates `e` and inserts the value;
//! * `,@e` evaluates `e` (which must yield a list) and splices its
//!   elements into the surrounding list;
//! * nested backquotes increase the quotation level; commas only fire at
//!   level 1.

use super::util::{expect_exact, nil};
use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// One expanded template element: a plain value or a splice-me list.
enum Expanded {
    Value(NodeId),
    Splice(Vec<NodeId>),
}

fn head_symbol_is(interp: &Interp, list: NodeId, name: &[u8]) -> bool {
    let kids = interp.arena.list_children(list);
    match kids.first() {
        Some(&head) => {
            let n = interp.arena.get(head);
            matches!((n.ty, n.payload), (NodeType::Symbol, Payload::Text(s))
                if interp.strings.get(s) == name)
        }
        None => false,
    }
}

fn expand(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    node: NodeId,
    env: EnvId,
    depth: usize,
    level: u32,
) -> Result<Expanded> {
    let ty = interp.arena.get(node).ty;
    if !matches!(ty, NodeType::List | NodeType::Expression) {
        return Ok(Expanded::Value(node));
    }
    // (unquote e)
    if head_symbol_is(interp, node, b"unquote") {
        let kids = interp.arena.list_children(node);
        if kids.len() != 2 {
            return Err(CuliError::Type {
                builtin: "quasiquote",
                expected: "(unquote expr)",
            });
        }
        if level == 1 {
            let v = eval(interp, hook, kids[1], env, depth + 1)?;
            return Ok(Expanded::Value(v));
        }
        // Deeper level: keep the form, expand inside with one level less.
        return rebuild(interp, hook, node, env, depth, level - 1);
    }
    // (unquote-splicing e)
    if head_symbol_is(interp, node, b"unquote-splicing") {
        let kids = interp.arena.list_children(node);
        if kids.len() != 2 {
            return Err(CuliError::Type {
                builtin: "quasiquote",
                expected: "(unquote-splicing expr)",
            });
        }
        if level == 1 {
            let v = eval(interp, hook, kids[1], env, depth + 1)?;
            let items = match interp.arena.get(v).ty {
                NodeType::List | NodeType::Expression => interp.arena.list_children(v),
                NodeType::Nil => Vec::new(),
                _ => {
                    return Err(CuliError::Type {
                        builtin: "quasiquote",
                        expected: "a list to splice",
                    })
                }
            };
            return Ok(Expanded::Splice(items));
        }
        return rebuild(interp, hook, node, env, depth, level - 1);
    }
    // (quasiquote t) nested: one level deeper.
    if head_symbol_is(interp, node, b"quasiquote") {
        return rebuild(interp, hook, node, env, depth, level + 1);
    }
    rebuild(interp, hook, node, env, depth, level)
}

/// Rebuilds a list template, expanding each child and inlining splices.
fn rebuild(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    node: NodeId,
    env: EnvId,
    depth: usize,
    level: u32,
) -> Result<Expanded> {
    let kids = interp.arena.list_children(node);
    let out = interp.alloc(Node::empty_list())?;
    for kid in kids {
        match expand(interp, hook, kid, env, depth, level)? {
            Expanded::Value(v) => {
                let copy = interp.copy_for_list(v)?;
                interp.arena.list_append(out, copy);
            }
            Expanded::Splice(items) => {
                for item in items {
                    let copy = interp.copy_for_list(item)?;
                    interp.arena.list_append(out, copy);
                }
            }
        }
    }
    Ok(Expanded::Value(out))
}

/// `(quasiquote template)` — see the module docs.
pub fn quasiquote(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("quasiquote", args, 1)?;
    match expand(interp, hook, args[0], env, depth, 1)? {
        Expanded::Value(v) => Ok(v),
        Expanded::Splice(_) => Err(CuliError::Type {
            builtin: "quasiquote",
            expected: "no top-level ,@",
        }),
    }
}

/// Bare `(unquote …)` outside a backquote is an error.
pub fn unquote_outside(
    interp: &mut Interp,
    _hook: &mut dyn ParallelHook,
    _args: &[NodeId],
    _env: EnvId,
    _depth: usize,
) -> Result<NodeId> {
    let _ = nil(interp); // keep the signature's side effects uniform
    Err(CuliError::Type {
        builtin: "unquote",
        expected: "use inside a quasiquote template",
    })
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn plain_backquote_acts_like_quote() {
        assert_eq!(run("`(1 2 3)"), "(1 2 3)");
        assert_eq!(run("`x"), "x");
        assert_eq!(run("`(a (b c))"), "(a (b c))");
    }

    #[test]
    fn unquote_inserts_values() {
        assert_eq!(run("`(1 ,(+ 1 1) 3)"), "(1 2 3)");
        let mut i = Interp::default();
        i.eval_str("(setq x 42)").unwrap();
        assert_eq!(
            i.eval_str("`(the answer is ,x)").unwrap(),
            "(the answer is 42)"
        );
    }

    #[test]
    fn splicing_inlines_lists() {
        let mut i = Interp::default();
        i.eval_str("(setq xs (list 2 3 4))").unwrap();
        assert_eq!(i.eval_str("`(1 ,@xs 5)").unwrap(), "(1 2 3 4 5)");
        assert_eq!(i.eval_str("`(,@xs)").unwrap(), "(2 3 4)");
        assert_eq!(i.eval_str("`(,@nil end)").unwrap(), "(end)");
    }

    #[test]
    fn nested_templates_expand_inner_levels_lazily() {
        // The inner backquote protects its commas by one level.
        let mut i = Interp::default();
        i.eval_str("(setq x 9)").unwrap();
        assert_eq!(
            i.eval_str("`(a `(b ,(c)))").unwrap(),
            "(a (quasiquote (b (unquote (c)))))"
        );
        assert_eq!(i.eval_str("`(out ,x)").unwrap(), "(out 9)");
    }

    #[test]
    fn macros_with_quasiquote() {
        let mut i = Interp::default();
        i.eval_str("(defmacro swap-args (f a b) `(,f ,b ,a))")
            .unwrap();
        assert_eq!(i.eval_str("(swap-args - 2 10)").unwrap(), "8");
        i.eval_str("(defmacro unless2 (c body) `(if ,c nil ,body))")
            .unwrap();
        assert_eq!(i.eval_str("(unless2 nil 7)").unwrap(), "7");
        assert_eq!(
            i.eval_str("(unless2 T (/ 1 0))").unwrap(),
            "nil",
            "lazy branch"
        );
    }

    #[test]
    fn bare_unquote_is_an_error() {
        assert!(Interp::default().eval_str(",x").is_err());
        assert!(Interp::default().eval_str("(unquote 5)").is_err());
    }

    #[test]
    fn splice_of_non_list_is_an_error() {
        assert!(Interp::default().eval_str("`(1 ,@5)").is_err());
    }
}
