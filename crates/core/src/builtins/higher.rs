//! Higher-order and searching built-ins: `mapcar apply funcall assoc
//! member last butlast`.
//!
//! `mapcar`/`apply`/`funcall` re-enter the evaluator with an
//! already-evaluated function value and argument values; the arguments are
//! quote-wrapped so they are not evaluated a second time.

use super::util::{as_list_children, eval_args, expect_exact, expect_min, list_from_values, nil};
use crate::builtins::compare::deep_eq;
use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// Applies an evaluated function value to evaluated argument values by
/// building `(f (quote a1) … (quote ak))` and evaluating it.
pub(crate) fn call_value(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    f: NodeId,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    match interp.arena.get(f).ty {
        NodeType::Function | NodeType::Form => {}
        _ => {
            return Err(CuliError::Type {
                builtin: "funcall",
                expected: "a function or form",
            })
        }
    }
    let expr = interp.alloc(Node::new(
        NodeType::Expression,
        Payload::List {
            first: None,
            last: None,
        },
    ))?;
    let f_copy = interp.copy_for_list(f)?;
    interp.arena.list_append(expr, f_copy);
    let quote_sym = interp.strings.intern(b"quote");
    for &a in args {
        let quoted = interp.alloc(Node::new(
            NodeType::List,
            Payload::List {
                first: None,
                last: None,
            },
        ))?;
        let qsym = interp.alloc(Node::symbol(quote_sym))?;
        interp.arena.list_append(quoted, qsym);
        let a_copy = interp.copy_for_list(a)?;
        interp.arena.list_append(quoted, a_copy);
        interp.arena.list_append(expr, quoted);
    }
    eval(interp, hook, expr, env, depth + 1)
}

/// `(mapcar f lst1 … lstk)` — element-wise application; result length is
/// the shortest input list's.
pub fn mapcar(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("mapcar", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let f = values[0];
    let mut lists = Vec::with_capacity(values.len() - 1);
    for &v in &values[1..] {
        lists.push(as_list_children(interp, v, "mapcar")?);
    }
    let n = lists.iter().map(Vec::len).min().unwrap_or(0);
    let mut results = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<NodeId> = lists.iter().map(|l| l[i]).collect();
        results.push(call_value(interp, hook, f, &row, env, depth)?);
    }
    list_from_values(interp, &results)
}

/// `(apply f arglist)` — call `f` with the list's elements as arguments.
pub fn apply(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("apply", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let call_args = as_list_children(interp, values[1], "apply")?;
    call_value(interp, hook, values[0], &call_args, env, depth)
}

/// `(funcall f a1 … ak)` — call `f` with the given arguments.
pub fn funcall(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("funcall", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    call_value(interp, hook, values[0], &values[1..], env, depth)
}

/// `(assoc key alist)` — first `(key value…)` pair whose head is `equal`
/// to the key; nil when absent.
pub fn assoc(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("assoc", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let pairs = as_list_children(interp, values[1], "assoc")?;
    for pair in pairs {
        let entry = as_list_children(interp, pair, "assoc")?;
        if let Some(&head) = entry.first() {
            if deep_eq(interp, values[0], head) {
                return Ok(pair);
            }
        }
    }
    nil(interp)
}

/// `(member x lst)` — the tail of `lst` starting at the first element
/// `equal` to `x` (sharing the chain), or nil.
pub fn member(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("member", args, 2)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let kids = as_list_children(interp, values[1], "member")?;
    let (_, last) = match interp.arena.get(values[1]).payload {
        Payload::List { first, last } => (first, last),
        _ => (None, None),
    };
    for &kid in &kids {
        if deep_eq(interp, values[0], kid) {
            return interp.alloc(Node {
                ty: NodeType::List,
                payload: Payload::List {
                    first: Some(kid),
                    last,
                },
                next: None,
            });
        }
    }
    nil(interp)
}

/// `(last lst)` — single-element list holding the final element (Common
/// Lisp's last cons), nil for empty input.
pub fn last(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("last", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let kids = as_list_children(interp, values[0], "last")?;
    match kids.last() {
        Some(&node) => interp.alloc(Node {
            ty: NodeType::List,
            payload: Payload::List {
                first: Some(node),
                last: Some(node),
            },
            next: None,
        }),
        None => nil(interp),
    }
}

/// `(butlast lst)` — everything except the final element (shallow copy).
pub fn butlast(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("butlast", args, 1)?;
    let values = eval_args(interp, hook, args, env, depth)?;
    let kids = as_list_children(interp, values[0], "butlast")?;
    if kids.is_empty() {
        return nil(interp);
    }
    list_from_values(interp, &kids[..kids.len() - 1])
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn mapcar_single_and_zipped() {
        assert_eq!(run("(mapcar abs (list -1 2 -3))"), "(1 2 3)");
        assert_eq!(run("(mapcar + (list 1 2 3) (list 10 20 30))"), "(11 22 33)");
        assert_eq!(
            run("(mapcar + (list 1 2 3) (list 10 20))"),
            "(11 22)",
            "shortest wins"
        );
        assert_eq!(run("(mapcar abs nil)"), "()");
    }

    #[test]
    fn mapcar_with_user_forms_and_lambdas() {
        let mut i = Interp::default();
        i.eval_str("(defun sq (x) (* x x))").unwrap();
        assert_eq!(
            i.eval_str("(mapcar sq (list 1 2 3 4))").unwrap(),
            "(1 4 9 16)"
        );
        assert_eq!(
            i.eval_str("(mapcar (lambda (x) (+ x 100)) (list 1 2))")
                .unwrap(),
            "(101 102)"
        );
    }

    #[test]
    fn mapcar_does_not_double_evaluate_elements() {
        // Elements that *look* like calls must be passed as data.
        assert_eq!(run("(mapcar car (list (list 1 2) (list 3 4)))"), "(1 3)");
        assert_eq!(run("(mapcar length '((+ 1 2) (a b c d)))"), "(3 4)");
    }

    #[test]
    fn apply_and_funcall() {
        assert_eq!(run("(apply + (list 1 2 3))"), "6");
        assert_eq!(run("(funcall * 2 3 7)"), "42");
        let mut i = Interp::default();
        i.eval_str("(defun sub2 (a b) (- a b))").unwrap();
        assert_eq!(i.eval_str("(apply sub2 (list 10 4))").unwrap(), "6");
        assert_eq!(i.eval_str("(funcall sub2 10 4)").unwrap(), "6");
    }

    #[test]
    fn assoc_finds_pairs() {
        let mut i = Interp::default();
        i.eval_str("(setq table (list (list 'a 1) (list 'b 2)))")
            .unwrap();
        assert_eq!(i.eval_str("(assoc 'b table)").unwrap(), "(b 2)");
        assert_eq!(i.eval_str("(assoc 'z table)").unwrap(), "nil");
    }

    #[test]
    fn member_returns_shared_tail() {
        assert_eq!(run("(member 3 (list 1 2 3 4 5))"), "(3 4 5)");
        assert_eq!(run("(member 9 (list 1 2 3))"), "nil");
        assert_eq!(
            run("(member (list 2) (list (list 1) (list 2) 3))"),
            "((2) 3)"
        );
    }

    #[test]
    fn last_and_butlast() {
        assert_eq!(run("(last (list 1 2 3))"), "(3)");
        assert_eq!(run("(last nil)"), "nil");
        assert_eq!(run("(butlast (list 1 2 3))"), "(1 2)");
        assert_eq!(run("(butlast (list 1))"), "()");
        assert_eq!(run("(butlast nil)"), "nil");
    }

    #[test]
    fn funcall_rejects_non_functions() {
        assert!(Interp::default().eval_str("(funcall 5 1)").is_err());
    }
}
