//! Logical built-ins: short-circuiting `and`/`or`, plus `not`.

use super::util::{bool_node, expect_exact, is_truthy};
use crate::error::Result;
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::types::{EnvId, NodeId};

/// `(and e…)` — evaluates left to right; nil short-circuits. Returns the
/// last value (or T for `(and)`).
pub fn and(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let mut last = None;
    for &a in args {
        let v = eval(interp, hook, a, env, depth + 1)?;
        if !is_truthy(interp, v) {
            return Ok(v);
        }
        last = Some(v);
    }
    match last {
        Some(v) => Ok(v),
        None => bool_node(interp, true),
    }
}

/// `(or e…)` — evaluates left to right; the first truthy value
/// short-circuits. Returns nil for `(or)`.
pub fn or(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let mut last = None;
    for &a in args {
        let v = eval(interp, hook, a, env, depth + 1)?;
        if is_truthy(interp, v) {
            return Ok(v);
        }
        last = Some(v);
    }
    match last {
        Some(v) => Ok(v),
        None => bool_node(interp, false),
    }
}

/// `(not x)` — T when x is nil.
pub fn not(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("not", args, 1)?;
    let v = eval(interp, hook, args[0], env, depth + 1)?;
    let truthy = is_truthy(interp, v);
    bool_node(interp, !truthy)
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn and_semantics() {
        assert_eq!(run("(and)"), "T");
        assert_eq!(run("(and 1 2 3)"), "3", "returns the last value");
        assert_eq!(run("(and 1 nil 3)"), "nil");
        assert_eq!(run("(and T T)"), "T");
    }

    #[test]
    fn and_short_circuits() {
        assert_eq!(run("(and nil (/ 1 0))"), "nil");
    }

    #[test]
    fn or_semantics() {
        assert_eq!(run("(or)"), "nil");
        assert_eq!(run("(or nil 2 3)"), "2", "returns the first truthy value");
        assert_eq!(run("(or nil nil)"), "nil");
    }

    #[test]
    fn or_short_circuits() {
        assert_eq!(run("(or 1 (/ 1 0))"), "1");
    }

    #[test]
    fn not_semantics() {
        assert_eq!(run("(not nil)"), "T");
        assert_eq!(run("(not T)"), "nil");
        assert_eq!(run("(not 0)"), "nil", "0 is truthy");
        assert_eq!(run("(not ())"), "T", "empty list is nil-valued");
    }
}
