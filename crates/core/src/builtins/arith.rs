//! Arithmetic built-ins: `+ - * / mod abs min max`.
//!
//! Integers stay integers (with checked overflow → [`CuliError::IntOverflow`]);
//! the moment a float participates the whole operation is carried out in
//! `f64`, matching the int/float promotion of the C original.

use super::util::{as_num, eval_args_scratch, expect_exact, expect_min, num_node, Num};
use crate::error::{CuliError, Result};
use crate::eval::ParallelHook;
use crate::interp::Interp;
use crate::node::Payload;
use crate::types::{EnvId, NodeId};

#[allow(clippy::too_many_arguments)] // mirrors the builtin signature plus fold parameters
fn fold_binop(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
    identity: Option<Num>,
) -> Result<NodeId> {
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let result = fold_values(interp, &values, name, int_op, float_op, identity);
    interp.put_node_buf(values);
    result
}

fn fold_values(
    interp: &mut Interp,
    values: &[NodeId],
    name: &'static str,
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
    identity: Option<Num>,
) -> Result<NodeId> {
    // Type-check every operand up front (the fold below must not surface
    // an overflow before a later operand's type error).
    for &v in values {
        as_num(interp, v, name)?;
    }
    let Some(&first) = values.first() else {
        return match identity {
            Some(id) => num_node(interp, id),
            None => Err(CuliError::Arity {
                builtin: name,
                expected: "at least 1",
                got: 0,
            }),
        };
    };
    let mut acc = as_num(interp, first, name)?;
    for &v in &values[1..] {
        let n = as_num(interp, v, name)?;
        interp.meter.arith_op();
        acc = match (acc, n) {
            (Num::I(a), Num::I(b)) => match int_op(a, b) {
                Some(v) => Num::I(v),
                None => return Err(CuliError::IntOverflow),
            },
            (a, b) => Num::F(float_op(a.as_f64(), b.as_f64())),
        };
    }
    num_node(interp, acc)
}

/// `(+ a b …)` — sum; `(+)` is 0.
pub fn add(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    fold_binop(
        interp,
        hook,
        args,
        env,
        depth,
        "+",
        i64::checked_add,
        |a, b| a + b,
        Some(Num::I(0)),
    )
}

/// `(- a)` negates; `(- a b …)` subtracts left to right.
pub fn sub(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("-", args, 1)?;
    if args.len() == 1 {
        let values = eval_args_scratch(interp, hook, args, env, depth)?;
        let value = values[0];
        interp.put_node_buf(values);
        interp.meter.arith_op();
        return match as_num(interp, value, "-")? {
            Num::I(v) => num_node(
                interp,
                Num::I(v.checked_neg().ok_or(CuliError::IntOverflow)?),
            ),
            Num::F(v) => num_node(interp, Num::F(-v)),
        };
    }
    fold_binop(
        interp,
        hook,
        args,
        env,
        depth,
        "-",
        i64::checked_sub,
        |a, b| a - b,
        None,
    )
}

/// `(* a b …)` — product; `(*)` is 1.
pub fn mul(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    fold_binop(
        interp,
        hook,
        args,
        env,
        depth,
        "*",
        i64::checked_mul,
        |a, b| a * b,
        Some(Num::I(1)),
    )
}

/// `(/ a b …)` — division. Integer division is exact when it divides
/// evenly; otherwise the result is promoted to float. Integer division by
/// zero errors; float division follows IEEE (`inf`/`nan`).
pub fn div(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("/", args, 2)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let result = div_values(interp, &values);
    interp.put_node_buf(values);
    result
}

fn div_values(interp: &mut Interp, values: &[NodeId]) -> Result<NodeId> {
    for &v in values {
        as_num(interp, v, "/")?;
    }
    let mut acc = as_num(interp, values[0], "/")?;
    for &v in &values[1..] {
        let n = as_num(interp, v, "/")?;
        interp.meter.arith_op();
        acc = match (acc, n) {
            (Num::I(a), Num::I(b)) => {
                if b == 0 {
                    return Err(CuliError::DivByZero);
                }
                if a % b == 0 {
                    Num::I(a / b)
                } else {
                    Num::F(a as f64 / b as f64)
                }
            }
            (a, b) => Num::F(a.as_f64() / b.as_f64()),
        };
    }
    num_node(interp, acc)
}

/// `(mod a b)` — integer remainder with the sign of the divisor (Lisp
/// `mod`, not C `%`).
pub fn modulo(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("mod", args, 2)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let pair = (
        interp.arena.get(values[0]).payload,
        interp.arena.get(values[1]).payload,
    );
    interp.put_node_buf(values);
    let (a, b) = match pair {
        (Payload::Int(a), Payload::Int(b)) => (a, b),
        _ => {
            return Err(CuliError::Type {
                builtin: "mod",
                expected: "two integers",
            })
        }
    };
    if b == 0 {
        return Err(CuliError::DivByZero);
    }
    interp.meter.arith_op();
    // Floored modulo: result carries the divisor's sign.
    let r = a % b;
    let m = if r != 0 && (r < 0) != (b < 0) {
        r + b
    } else {
        r
    };
    num_node(interp, Num::I(m))
}

/// `(abs a)`.
pub fn abs(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("abs", args, 1)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let value = values[0];
    interp.put_node_buf(values);
    interp.meter.arith_op();
    match as_num(interp, value, "abs")? {
        Num::I(v) => num_node(
            interp,
            Num::I(v.checked_abs().ok_or(CuliError::IntOverflow)?),
        ),
        Num::F(v) => num_node(interp, Num::F(v.abs())),
    }
}

/// `(min a b …)`.
pub fn min(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    extremum(interp, hook, args, env, depth, "min", true)
}

/// `(max a b …)`.
pub fn max(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    extremum(interp, hook, args, env, depth, "max", false)
}

fn extremum(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
    name: &'static str,
    want_min: bool,
) -> Result<NodeId> {
    expect_min(name, args, 1)?;
    let values = eval_args_scratch(interp, hook, args, env, depth)?;
    let result = extremum_values(interp, &values, name, want_min);
    interp.put_node_buf(values);
    result
}

fn extremum_values(
    interp: &mut Interp,
    values: &[NodeId],
    name: &'static str,
    want_min: bool,
) -> Result<NodeId> {
    let mut best = as_num(interp, values[0], name)?;
    for &v in &values[1..] {
        let n = as_num(interp, v, name)?;
        interp.meter.arith_op();
        let take = if want_min {
            n.as_f64() < best.as_f64()
        } else {
            n.as_f64() > best.as_f64()
        };
        if take {
            best = n;
        }
    }
    num_node(interp, best)
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }
    fn run_err(src: &str) -> CuliError {
        Interp::default().eval_str(src).unwrap_err()
    }

    #[test]
    fn add_variants() {
        assert_eq!(run("(+)"), "0");
        assert_eq!(run("(+ 5)"), "5");
        assert_eq!(run("(+ 1 2 3 4)"), "10");
        assert_eq!(run("(+ 1 2.5)"), "3.5");
        assert_eq!(run("(+ -3 3)"), "0");
    }

    #[test]
    fn sub_variants() {
        assert_eq!(run("(- 5)"), "-5");
        assert_eq!(run("(- 10 3 2)"), "5");
        assert_eq!(run("(- 1.5 0.5)"), "1.0");
    }

    #[test]
    fn mul_variants() {
        assert_eq!(run("(*)"), "1");
        assert_eq!(run("(* 2 3 4)"), "24");
        assert_eq!(run("(* 2 0.5)"), "1.0");
    }

    #[test]
    fn div_int_exact_stays_int() {
        assert_eq!(run("(/ 10 2)"), "5");
        assert_eq!(run("(/ 7 2)"), "3.5");
        assert_eq!(run("(/ 1.0 4)"), "0.25");
        assert_eq!(run("(/ 100 5 2)"), "10");
    }

    #[test]
    fn div_by_zero() {
        assert_eq!(run_err("(/ 1 0)"), CuliError::DivByZero);
        assert_eq!(run("(/ 1.0 0)"), "inf");
        assert_eq!(run("(/ -1.0 0)"), "-inf");
    }

    #[test]
    fn modulo_lisp_semantics() {
        assert_eq!(run("(mod 7 3)"), "1");
        assert_eq!(run("(mod -7 3)"), "2", "mod takes the divisor's sign");
        assert_eq!(run("(mod 7 -3)"), "-2");
        assert_eq!(run_err("(mod 7 0)"), CuliError::DivByZero);
        assert!(matches!(run_err("(mod 1.5 2)"), CuliError::Type { .. }));
    }

    #[test]
    fn abs_min_max() {
        assert_eq!(run("(abs -5)"), "5");
        assert_eq!(run("(abs 2.5)"), "2.5");
        assert_eq!(run("(min 3 1 2)"), "1");
        assert_eq!(run("(max 3 1 2)"), "3");
        assert_eq!(run("(min 1.5 2)"), "1.5");
    }

    #[test]
    fn int_overflow_is_an_error() {
        assert_eq!(run_err("(+ 9223372036854775807 1)"), CuliError::IntOverflow);
        assert_eq!(run_err("(* 9223372036854775807 2)"), CuliError::IntOverflow);
        assert_eq!(
            run_err("(- -9223372036854775807 2)"),
            CuliError::IntOverflow
        );
    }

    #[test]
    fn type_errors_reported() {
        assert!(matches!(run_err("(+ 1 \"x\")"), CuliError::Type { .. }));
        assert!(matches!(run_err("(+ 1 (list 1))"), CuliError::Type { .. }));
    }

    #[test]
    fn nested_arithmetic() {
        // Paper's example: (* 2 (+ 4 3) 6) = 84
        assert_eq!(run("(* 2 (+ 4 3) 6)"), "84");
        assert_eq!(run("(+ (* 5 6) 1 2)"), "33");
    }
}
