//! Control-flow built-ins: `if cond progn when unless while quote eval`.
//!
//! These are the built-ins that exploit receiving their arguments
//! *unevaluated* (paper §III-B c): `if` evaluates only the taken branch,
//! `quote` evaluates nothing, `while` re-evaluates its condition and body.

use super::util::{expect_exact, expect_min, is_truthy, nil};
use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::NodeType;
use crate::types::{EnvId, NodeId};

/// `(if cond then [else])` — lazy on both branches.
pub fn if_(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    if args.len() != 2 && args.len() != 3 {
        return Err(CuliError::Arity {
            builtin: "if",
            expected: "2 or 3",
            got: args.len(),
        });
    }
    let cond = eval(interp, hook, args[0], env, depth + 1)?;
    if is_truthy(interp, cond) {
        eval(interp, hook, args[1], env, depth + 1)
    } else if let Some(&alt) = args.get(2) {
        eval(interp, hook, alt, env, depth + 1)
    } else {
        nil(interp)
    }
}

/// `(cond (test body…) …)` — first clause whose test is truthy wins; its
/// body evaluates left to right, returning the last value (or the test's
/// value for an empty body). nil when no clause fires.
pub fn cond(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    for &clause in args {
        if interp.arena.get(clause).ty != NodeType::List {
            return Err(CuliError::Type {
                builtin: "cond",
                expected: "clause lists",
            });
        }
        let mut parts = interp.take_node_buf();
        interp.arena.list_children_into(clause, &mut parts);
        let outcome = cond_clause(interp, hook, &parts, env, depth);
        interp.put_node_buf(parts);
        if let Some(value) = outcome? {
            return Ok(value);
        }
    }
    nil(interp)
}

/// Evaluates one `cond` clause; `Some(value)` when the clause fired.
fn cond_clause(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    parts: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<Option<NodeId>> {
    let Some(&test) = parts.first() else {
        return Err(CuliError::Type {
            builtin: "cond",
            expected: "non-empty clauses",
        });
    };
    let test_val = eval(interp, hook, test, env, depth + 1)?;
    if !is_truthy(interp, test_val) {
        return Ok(None);
    }
    let mut last = test_val;
    for &body in &parts[1..] {
        last = eval(interp, hook, body, env, depth + 1)?;
    }
    Ok(Some(last))
}

/// `(progn e…)` — evaluate in order, return the last value (nil if empty).
pub fn progn(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let mut last = None;
    for &a in args {
        last = Some(eval(interp, hook, a, env, depth + 1)?);
    }
    match last {
        Some(v) => Ok(v),
        None => nil(interp),
    }
}

/// `(when cond body…)` — body only when cond is truthy.
pub fn when(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("when", args, 1)?;
    let cond = eval(interp, hook, args[0], env, depth + 1)?;
    if is_truthy(interp, cond) {
        progn(interp, hook, &args[1..], env, depth)
    } else {
        nil(interp)
    }
}

/// `(unless cond body…)` — body only when cond is nil.
pub fn unless(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("unless", args, 1)?;
    let cond = eval(interp, hook, args[0], env, depth + 1)?;
    if is_truthy(interp, cond) {
        nil(interp)
    } else {
        progn(interp, hook, &args[1..], env, depth)
    }
}

/// `(while cond body…)` — loop while cond is truthy; returns nil.
///
/// The condition and body are re-evaluated each iteration (this is the one
/// construct whose node subtrees are evaluated arbitrarily many times). On
/// a GPU warp an endless `while` is precisely the livelock hazard of paper
/// §III-D d — the interpreter itself only bounds it by the arena and the
/// caller's patience.
pub fn while_(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_min("while", args, 1)?;
    loop {
        let cond = eval(interp, hook, args[0], env, depth + 1)?;
        if !is_truthy(interp, cond) {
            return nil(interp);
        }
        for &body in &args[1..] {
            eval(interp, hook, body, env, depth + 1)?;
        }
    }
}

/// `(quote x)` — x, unevaluated.
pub fn quote(
    interp: &mut Interp,
    _hook: &mut dyn ParallelHook,
    args: &[NodeId],
    _env: EnvId,
    _depth: usize,
) -> Result<NodeId> {
    expect_exact("quote", args, 1)?;
    let _ = interp;
    Ok(args[0])
}

/// `(eval x)` — evaluate x, then evaluate the result.
pub fn eval_fn(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    expect_exact("eval", args, 1)?;
    let once = eval(interp, hook, args[0], env, depth + 1)?;
    eval(interp, hook, once, env, depth + 1)
}

#[cfg(test)]
mod tests {

    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    #[test]
    fn if_branches() {
        assert_eq!(run("(if T 1 2)"), "1");
        assert_eq!(run("(if nil 1 2)"), "2");
        assert_eq!(run("(if nil 1)"), "nil");
        assert_eq!(run("(if (< 1 2) \"yes\" \"no\")"), "\"yes\"");
    }

    #[test]
    fn if_is_lazy() {
        // The untaken branch would divide by zero.
        assert_eq!(run("(if T 1 (/ 1 0))"), "1");
        assert_eq!(run("(if nil (/ 1 0) 2)"), "2");
    }

    #[test]
    fn cond_first_truthy_wins() {
        assert_eq!(run("(cond ((< 2 1) 10) ((< 1 2) 20) (T 30))"), "20");
        assert_eq!(run("(cond (nil 1))"), "nil");
        assert_eq!(run("(cond (5))"), "5", "empty body returns the test value");
        assert_eq!(run("(cond (T 1 2 3))"), "3", "multi-form body returns last");
    }

    #[test]
    fn progn_sequences() {
        assert_eq!(run("(progn 1 2 3)"), "3");
        assert_eq!(run("(progn)"), "nil");
        assert_eq!(run("(progn (setq x 1) (+ x 1))"), "2");
    }

    #[test]
    fn when_unless() {
        assert_eq!(run("(when T 1 2)"), "2");
        assert_eq!(run("(when nil 1 2)"), "nil");
        assert_eq!(run("(unless nil 7)"), "7");
        assert_eq!(run("(unless T 7)"), "nil");
    }

    #[test]
    fn while_loops_until_false() {
        let mut i = Interp::default();
        i.eval_str("(setq n 0)").unwrap();
        assert_eq!(
            i.eval_str("(while (< n 5) (setq n (+ n 1)))").unwrap(),
            "nil"
        );
        assert_eq!(i.eval_str("n").unwrap(), "5");
    }

    #[test]
    fn quote_suppresses_evaluation() {
        assert_eq!(run("(quote (+ 1 2))"), "(+ 1 2)");
        assert_eq!(run("'(+ 1 2)"), "(+ 1 2)");
        assert_eq!(run("'x"), "x");
    }

    #[test]
    fn eval_evaluates_twice() {
        assert_eq!(run("(eval '(+ 1 2))"), "3");
        assert_eq!(run("(eval (list '+ 1 2))"), "3");
    }
}
