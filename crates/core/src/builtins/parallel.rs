//! The `|||` built-in — CuLi's parallel section (paper §III-D).
//!
//! `(||| n f list1 … listk)`: the first parameter is the number of workers,
//! the second the function to execute, and the remaining parameters are
//! k lists of arguments. The master builds, per worker `w`, a new
//! expression `(f list1[w] … listk[w])` (paper's example: `(||| 3 + (1 2 3)
//! (4 5 6))` becomes `(+ 1 4)`, `(+ 2 5)`, `(+ 3 6)`), hands the batch to
//! the parallel backend, then collects the results **in distribution
//! order** into a fresh list.

use super::util::{expect_min, list_from_values};
use crate::error::{CuliError, Result};
use crate::eval::{eval, ParallelHook};
use crate::interp::Interp;
use crate::node::{Node, NodeType, Payload};
use crate::types::{EnvId, NodeId};

/// Implements `(||| n f args…)`.
///
/// Argument collection, job construction and result gathering all run
/// through pooled scratch buffers ([`Interp::take_node_buf`]) — a warm
/// section performs no heap allocation on the master side beyond the
/// arena nodes of the job expressions and the result list.
pub fn par(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<NodeId> {
    let jobs = prepare_section(interp, hook, args, env, depth)?;

    // Distribute, wait, collect in order (paper §III-D b: "appends the
    // workers' results in the same order as the work was distributed").
    let n = jobs.len();
    let mut results = interp.take_node_buf();
    let outcome = hook.execute(interp, &jobs, env, &mut results);
    interp.put_node_buf(jobs);
    let finished = match outcome {
        Ok(()) => {
            debug_assert_eq!(results.len(), n);
            finish_section(interp, &results)
        }
        Err(e) => Err(e),
    };
    interp.put_node_buf(results);
    finished
}

/// The master-side front half of a `|||` section: evaluates the worker
/// count, the function and the argument lists, then builds one job
/// expression per worker into a pooled buffer (return it with
/// [`Interp::put_node_buf`]). Split out of the `|||` builtin so the pipelined REPL
/// dispatcher (`culi-runtime`) can stage a section's jobs without
/// blocking for its results while charging the meter *exactly* like the
/// synchronous path.
pub fn prepare_section(
    interp: &mut Interp,
    hook: &mut dyn ParallelHook,
    args: &[NodeId],
    env: EnvId,
    depth: usize,
) -> Result<Vec<NodeId>> {
    expect_min("|||", args, 2)?;

    // Worker count.
    let n_val = eval(interp, hook, args[0], env, depth + 1)?;
    let n = match interp.arena.get(n_val).payload {
        Payload::Int(v) if v > 0 => v as usize,
        _ => {
            return Err(CuliError::Type {
                builtin: "|||",
                expected: "a positive worker count",
            })
        }
    };
    if let Some(max) = hook.max_workers() {
        if n > max {
            return Err(CuliError::TooManyWorkers {
                requested: n,
                available: max,
            });
        }
    }

    // The function to distribute.
    let f_val = eval(interp, hook, args[1], env, depth + 1)?;
    match interp.arena.get(f_val).ty {
        NodeType::Function | NodeType::Form => {}
        _ => {
            return Err(CuliError::Type {
                builtin: "|||",
                expected: "a function or form",
            })
        }
    }

    // Argument lists, flattened into one pooled buffer with stride `n`
    // (only the first n elements of each list are distributed).
    let nlists = args.len() - 2;
    let mut argv = interp.take_node_buf();
    for (i, &a) in args[2..].iter().enumerate() {
        let v = match eval(interp, hook, a, env, depth + 1) {
            Ok(v) => v,
            Err(e) => {
                interp.put_node_buf(argv);
                return Err(e);
            }
        };
        let node = interp.arena.get(v);
        let first = match (node.ty, node.payload) {
            (NodeType::List | NodeType::Expression, Payload::List { first, .. }) => first,
            (NodeType::Nil, _) => None,
            _ => {
                interp.put_node_buf(argv);
                return Err(CuliError::Type {
                    builtin: "|||",
                    expected: "a list",
                });
            }
        };
        let before = argv.len();
        let mut cur = first;
        while let Some(id) = cur {
            if argv.len() - before == n {
                break;
            }
            argv.push(id);
            cur = interp.arena.get(id).next;
        }
        let got = argv.len() - before;
        if got < n {
            interp.put_node_buf(argv);
            return Err(CuliError::ParallelArgShort {
                arg_index: i,
                len: got,
                requested: n,
            });
        }
    }

    // Build one expression per worker (paper §III-D a).
    let mut jobs = interp.take_node_buf();
    for w in 0..n {
        let built = build_job(interp, f_val, &argv, nlists, n, w);
        match built {
            Ok(expr) => jobs.push(expr),
            Err(e) => {
                interp.put_node_buf(argv);
                interp.put_node_buf(jobs);
                return Err(e);
            }
        }
    }
    interp.put_node_buf(argv);
    Ok(jobs)
}

/// The master-side back half of a `|||` section: wraps collected worker
/// results into the section's value list, in distribution order.
pub fn finish_section(interp: &mut Interp, results: &[NodeId]) -> Result<NodeId> {
    list_from_values(interp, results)
}

/// Builds worker `w`'s job expression `(f list1[w] … listk[w])` from the
/// flattened argument buffer.
fn build_job(
    interp: &mut Interp,
    f_val: NodeId,
    argv: &[NodeId],
    nlists: usize,
    n: usize,
    w: usize,
) -> Result<NodeId> {
    let expr = interp.alloc(Node::new(
        NodeType::Expression,
        Payload::List {
            first: None,
            last: None,
        },
    ))?;
    let f_copy = interp.copy_for_list(f_val)?;
    interp.arena.list_append(expr, f_copy);
    for l in 0..nlists {
        let elem_copy = interp.copy_for_list(argv[l * n + w])?;
        interp.arena.list_append(expr, elem_copy);
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use crate::error::CuliError;
    use crate::interp::Interp;

    fn run(src: &str) -> String {
        Interp::default().eval_str(src).unwrap()
    }

    fn run_err(src: &str) -> CuliError {
        Interp::default().eval_str(src).unwrap_err()
    }

    #[test]
    fn paper_example() {
        // Paper §III-D a: (||| 3 + (1 2 3) (4 5 6)) → workers compute
        // (+ 1 4), (+ 2 5), (+ 3 6).
        assert_eq!(run("(||| 3 + (1 2 3) (4 5 6))"), "(5 7 9)");
    }

    #[test]
    fn results_keep_distribution_order() {
        assert_eq!(run("(||| 4 - (10 20 30 40) (1 2 3 4))"), "(9 18 27 36)");
    }

    #[test]
    fn works_with_user_defined_forms() {
        let mut i = Interp::default();
        i.eval_str("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        assert_eq!(
            i.eval_str("(||| 6 fib (5 5 5 5 5 5))").unwrap(),
            "(5 5 5 5 5 5)"
        );
        assert_eq!(i.eval_str("(||| 3 fib (1 5 9))").unwrap(), "(1 5 34)");
    }

    #[test]
    fn single_worker_and_single_list() {
        assert_eq!(run("(||| 1 abs (-5))"), "(5)");
    }

    #[test]
    fn zero_arg_function_jobs() {
        let mut i = Interp::default();
        i.eval_str("(defun answer () 42)").unwrap();
        assert_eq!(i.eval_str("(||| 3 answer)").unwrap(), "(42 42 42)");
    }

    #[test]
    fn uses_fewer_workers_than_list_length() {
        assert_eq!(run("(||| 2 + (1 2 3 4) (10 20 30 40))"), "(11 22)");
    }

    #[test]
    fn argument_lists_may_be_expressions() {
        assert_eq!(run("(||| 2 * (list 2 3) (list 10 10))"), "(20 30)");
    }

    #[test]
    fn short_list_is_an_error() {
        match run_err("(||| 3 + (1 2) (4 5 6))") {
            CuliError::ParallelArgShort {
                arg_index: 0,
                len: 2,
                requested: 3,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_worker_count_is_an_error() {
        assert!(matches!(
            run_err("(||| 0 + (1) (2))"),
            CuliError::Type { .. }
        ));
        assert!(matches!(
            run_err("(||| -3 + (1) (2))"),
            CuliError::Type { .. }
        ));
        assert!(matches!(
            run_err("(||| 1.5 + (1) (2))"),
            CuliError::Type { .. }
        ));
    }

    #[test]
    fn non_function_is_an_error() {
        assert!(matches!(run_err("(||| 1 5 (1))"), CuliError::Type { .. }));
    }

    #[test]
    fn nested_parallel_sections() {
        // A worker may itself open a ||| section.
        let mut i = Interp::default();
        i.eval_str("(defun row (x) (||| 2 + (1 2) (list x x)))")
            .unwrap();
        assert_eq!(
            i.eval_str("(||| 2 row (10 20))").unwrap(),
            "((11 12) (21 22))"
        );
    }

    #[test]
    fn workers_do_not_leak_bindings_to_each_other() {
        // Each worker binds w locally via its own environment; the global w
        // stays visible afterwards and unchanged.
        let mut i = Interp::default();
        i.eval_str("(setq w 7)").unwrap();
        i.eval_str("(defun probe (x) (progn (let v x) (+ v w)))")
            .unwrap();
        assert_eq!(i.eval_str("(||| 2 probe (100 200))").unwrap(), "(107 207)");
        assert_eq!(i.eval_str("w").unwrap(), "7");
    }
}
