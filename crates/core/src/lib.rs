//! # culi-core — the CuLi Lisp interpreter
//!
//! Rust reproduction of the interpreter described in *"And Now for
//! Something Completely Different: Running Lisp on GPUs"* (Süß, Döring,
//! Brinkmann, Nagel — IEEE CLUSTER 2018): node arena, environment trees,
//! character-by-character parser, recursive evaluator, postfix printer, and
//! the `|||` parallel construct.
//!
//! This crate is backend-agnostic: it executes Lisp and *counts* every
//! primitive operation ([`cost::Counters`]); the GPU/CPU device models in
//! `culi-gpu-sim` turn those counts into simulated time, and
//! `culi-runtime` supplies real parallel backends for `|||` via the
//! [`eval::ParallelHook`] seam.
//!
//! ## Quick example
//!
//! ```
//! use culi_core::interp::Interp;
//!
//! let mut lisp = Interp::default();
//! lisp.eval_str("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))").unwrap();
//! assert_eq!(lisp.eval_str("(||| 3 fib (5 6 7))").unwrap(), "(5 8 13)");
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod builtins;
pub mod cost;
pub mod effects;
pub mod env;
pub mod error;
pub mod eval;
pub mod fault;
pub mod gc;
pub mod hostio;
pub mod interp;
pub mod node;
pub mod parser;
pub mod postbox;
pub mod printer;
pub mod strings;
pub mod structhash;
pub mod types;

pub use error::{CuliError, ErrorCode, Result};
pub use eval::{eval, ParallelHook, SequentialHook};
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use interp::{Interp, InterpConfig};
pub use types::{BindingId, BuiltinId, EnvId, NodeId, StrId};
