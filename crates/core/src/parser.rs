//! The parser — input string to parse tree (paper §III-B b).
//!
//! *"An opening parenthesis builds a new list ... This new list will be the
//! current list until the parser reaches a matching closing parenthesis. All
//! nodes generated within these two are added to the new list."* Token
//! classification follows the paper exactly: quoted ⇒ `N_STRING`, `nil`/`T`
//! ⇒ `N_NIL`/`N_TRUE`, number-looking ⇒ `N_INT`/`N_FLOAT` (dot ⇒ float),
//! everything else ⇒ `N_SYMBOL`.
//!
//! One extension: the reader shorthand `'x` expands to `(quote x)`.

use crate::error::{CuliError, Result};
use crate::interp::Interp;
use crate::node::Node;
use crate::types::NodeId;
use culi_strlib::ascii;
use culi_strlib::parse_num::{classify_number, NumParse};
use culi_strlib::scan::{next_token, Scan, Token, TokenKind};

/// Parses a complete input string into a sequence of top-level nodes.
///
/// The paper states every correct input "consists of at least one list";
/// we additionally accept bare atoms at top level (`5` evaluates to `5`),
/// which the reference REPL also tolerates in practice.
pub fn parse(interp: &mut Interp, input: &[u8]) -> Result<Vec<NodeId>> {
    let max_depth = interp.config.max_depth;
    let mut parser = Parser {
        interp,
        input,
        pos: 0,
        chars: 0,
        depth: 0,
        max_depth,
    };
    let forms = parser.parse_all()?;
    let scanned = parser.chars;
    interp.meter.chars_scanned(scanned);
    Ok(forms)
}

struct Parser<'a> {
    interp: &'a mut Interp,
    input: &'a [u8],
    pos: usize,
    chars: u64,
    depth: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn parse_all(&mut self) -> Result<Vec<NodeId>> {
        let mut forms = Vec::new();
        while let Some(tok) = self.next()? {
            let node = self.parse_node(tok)?;
            forms.push(node);
        }
        Ok(forms)
    }

    fn next(&mut self) -> Result<Option<Token>> {
        match next_token(self.input, self.pos, &mut self.chars) {
            Scan::Tok { tok, next } => {
                self.pos = next;
                Ok(Some(tok))
            }
            Scan::End => Ok(None),
            Scan::UnterminatedString { at } => Err(CuliError::UnterminatedString { at }),
        }
    }

    /// Parses one node starting from an already-fetched token.
    fn parse_node(&mut self, tok: Token) -> Result<NodeId> {
        match tok.kind {
            TokenKind::LParen => self.parse_list(),
            TokenKind::RParen => Err(CuliError::UnbalancedClose { at: tok.start }),
            TokenKind::Str => {
                let sid = self.interp.strings.intern(tok.text(self.input));
                self.interp.alloc(Node::string(sid))
            }
            TokenKind::Atom => self.classify_atom(tok),
            TokenKind::Quote => self.reader_macro(b"quote"),
            TokenKind::Backquote => self.reader_macro(b"quasiquote"),
            TokenKind::Unquote => self.reader_macro(b"unquote"),
            TokenKind::UnquoteSplice => self.reader_macro(b"unquote-splicing"),
        }
    }

    /// Expands `'x`, `` `x ``, `,x`, `,@x` into `(<name> x)`.
    fn reader_macro(&mut self, name: &[u8]) -> Result<NodeId> {
        let inner_tok = self.next()?.ok_or(CuliError::UnbalancedOpen { depth: 1 })?;
        let inner = self.parse_node(inner_tok)?;
        let list = self.interp.alloc(Node::empty_list())?;
        let sym = self.interp.symbol(name)?;
        self.interp.arena.list_append(list, sym);
        self.interp.arena.list_append(list, inner);
        Ok(list)
    }

    /// Parses the remainder of a list whose `(` has been consumed.
    fn parse_list(&mut self) -> Result<NodeId> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(CuliError::RecursionLimit {
                limit: self.max_depth,
            });
        }
        let result = self.parse_list_inner();
        self.depth -= 1;
        result
    }

    fn parse_list_inner(&mut self) -> Result<NodeId> {
        let list = self.interp.alloc(Node::empty_list())?;
        loop {
            let tok = match self.next()? {
                Some(t) => t,
                None => return Err(CuliError::UnbalancedOpen { depth: 1 }),
            };
            if tok.kind == TokenKind::RParen {
                return Ok(list);
            }
            let child = self.parse_node(tok)?;
            self.interp.arena.list_append(list, child);
        }
    }

    /// Applies the paper's atom-classification rules.
    fn classify_atom(&mut self, tok: Token) -> Result<NodeId> {
        let text = tok.text(self.input);
        // nil / T literals (case-insensitive, as classic Lisp readers are).
        if ascii::eq_ignore_case(text, b"nil") {
            return self.interp.alloc(Node::nil());
        }
        if ascii::eq_ignore_case(text, b"t") {
            return self.interp.alloc(Node::truth());
        }
        if ascii::is_number_start(text[0]) {
            match classify_number(text) {
                NumParse::Int(v) => return self.interp.alloc(Node::int(v)),
                NumParse::Float(v) => return self.interp.alloc(Node::float(v)),
                NumParse::NotANumber => {} // fall through to symbol (e.g. `+`)
            }
        }
        let sid = self.interp.strings.intern(text);
        self.interp.alloc(Node::symbol(sid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, InterpConfig};
    use crate::node::{NodeType, Payload};

    fn interp() -> Interp {
        Interp::new(InterpConfig::default())
    }

    fn parse_one(i: &mut Interp, src: &str) -> NodeId {
        let forms = parse(i, src.as_bytes()).unwrap();
        assert_eq!(forms.len(), 1, "expected one top-level form in {src:?}");
        forms[0]
    }

    #[test]
    fn atom_classification_matches_paper() {
        let mut i = interp();
        let cases = [
            ("42", NodeType::Int),
            ("-17", NodeType::Int),
            ("3.5", NodeType::Float),
            ("nil", NodeType::Nil),
            ("NIL", NodeType::Nil),
            ("T", NodeType::True),
            ("foo", NodeType::Symbol),
            ("+", NodeType::Symbol),
            ("\"hi\"", NodeType::Str),
        ];
        for (src, want) in cases {
            let id = parse_one(&mut i, src);
            assert_eq!(i.arena.get(id).ty, want, "{src}");
        }
    }

    #[test]
    fn nested_lists_build_a_tree() {
        let mut i = interp();
        // Paper Fig. 4: (+ (* 5 6) 1 2)
        let root = parse_one(&mut i, "(+ (* 5 6) 1 2)");
        let kids = i.arena.list_children(root);
        assert_eq!(kids.len(), 4);
        assert_eq!(i.arena.get(kids[0]).ty, NodeType::Symbol);
        assert_eq!(i.arena.get(kids[1]).ty, NodeType::List);
        let inner = i.arena.list_children(kids[1]);
        assert_eq!(inner.len(), 3);
        match i.arena.get(inner[1]).payload {
            Payload::Int(5) => {}
            other => panic!("expected 5, got {other:?}"),
        }
    }

    #[test]
    fn empty_list_parses() {
        let mut i = interp();
        let root = parse_one(&mut i, "()");
        assert_eq!(i.arena.list_len(root), 0);
    }

    #[test]
    fn multiple_top_level_forms() {
        let mut i = interp();
        let forms = parse(&mut i, b"(+ 1 2) (+ 3 4) 7").unwrap();
        assert_eq!(forms.len(), 3);
    }

    #[test]
    fn unbalanced_close_is_an_error() {
        let mut i = interp();
        assert_eq!(
            parse(&mut i, b"(+ 1 2))"),
            Err(CuliError::UnbalancedClose { at: 7 })
        );
    }

    #[test]
    fn unbalanced_open_is_an_error() {
        let mut i = interp();
        assert!(matches!(
            parse(&mut i, b"((+ 1 2)"),
            Err(CuliError::UnbalancedOpen { .. })
        ));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let mut i = interp();
        assert_eq!(
            parse(&mut i, b"(\"never closed)"),
            Err(CuliError::UnterminatedString { at: 1 })
        );
    }

    #[test]
    fn string_value_excludes_quotes() {
        let mut i = interp();
        let root = parse_one(&mut i, "\"hi there\"");
        match i.arena.get(root).payload {
            Payload::Text(sid) => assert_eq!(i.strings.get(sid), b"hi there"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quote_shorthand_expands() {
        let mut i = interp();
        let root = parse_one(&mut i, "'x");
        let kids = i.arena.list_children(root);
        assert_eq!(kids.len(), 2);
        match i.arena.get(kids[0]).payload {
            Payload::Text(sid) => assert_eq!(i.strings.get(sid), b"quote"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quote_shorthand_on_list() {
        let mut i = interp();
        let root = parse_one(&mut i, "'(1 2 3)");
        let kids = i.arena.list_children(root);
        assert_eq!(kids.len(), 2);
        assert_eq!(i.arena.list_len(kids[1]), 3);
    }

    #[test]
    fn parse_charges_chars_scanned() {
        let mut i = interp();
        let before = i.meter.snapshot();
        parse(&mut i, b"(+ 1 2)").unwrap();
        let d = i.meter.snapshot().delta_since(&before);
        assert!(d.chars_scanned >= 7, "scanned {} chars", d.chars_scanned);
        assert!(d.nodes_alloc >= 4, "allocated {} nodes", d.nodes_alloc);
    }

    #[test]
    fn arena_exhaustion_surfaces_from_parse() {
        // Capacity covers the builtin function nodes plus a couple of slots,
        // so a moderately sized input must trip ArenaFull mid-parse.
        let builtin_count = crate::builtins::all_builtins().len();
        let mut i = Interp::new(InterpConfig {
            arena_capacity: builtin_count + 2,
            ..Default::default()
        });
        let err = parse(&mut i, b"(+ 1 2 3 4 5 6)").unwrap_err();
        assert!(matches!(err, CuliError::ArenaFull { .. }), "{err:?}");
    }

    #[test]
    fn deeply_nested_input_parses() {
        let mut i = interp();
        let depth = 200;
        let src = format!("{}{}{}", "(".repeat(depth), "1", ")".repeat(depth));
        let forms = parse(&mut i, src.as_bytes()).unwrap();
        assert_eq!(forms.len(), 1);
    }
}
