//! Snapshot-resync property suite: after N ∈ {10, 1 000, 10 000}
//! interleaved defines/sets/redefines, a cold replica resynchronized via
//! a whole-environment [`EnvSnapshot`] converges to exactly the same
//! environment state as one repaired by incremental [`SyncPacket`]
//! replay — same visible values *and* same paper-model lookup charges —
//! while the snapshot's size stays bounded by the live environment
//! regardless of the mutation volume.

use culi_core::cost::Meter;
use culi_core::postbox::{EnvSnapshot, SyncPacket};
use culi_core::Interp;

/// splitmix64 — deterministic, seedable op mixing.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const DISTINCT_SYMS: u64 = 16;

/// Runs `n` interleaved mutations against a fresh master: `setq`s over a
/// fixed symbol pool (first hit defines, later ones overwrite) and
/// occasional shadowing `defun` redefinitions.
fn mutate(master: &mut Interp, rng: &mut Rng, n: usize) {
    for _ in 0..n {
        match rng.below(10) {
            0..=7 => {
                let sym = rng.below(DISTINCT_SYMS);
                let val = rng.below(1_000_000);
                master.eval_str(&format!("(setq s{sym} {val})")).unwrap();
            }
            8 => {
                let sym = rng.below(DISTINCT_SYMS);
                master
                    .eval_str(&format!("(defun f{sym} (x) (+ x s{sym}))"))
                    .unwrap();
            }
            _ => {
                let v = rng.below(100);
                master
                    .eval_str(&format!("(setq lst (list {v} {} {}))", v + 1, v + 2))
                    .unwrap();
            }
        }
    }
}

/// Every symbol the mutation mix can touch.
fn touched_symbols() -> Vec<String> {
    let mut names: Vec<String> = (0..DISTINCT_SYMS)
        .flat_map(|i| [format!("s{i}"), format!("f{i}")])
        .collect();
    names.push("lst".to_string());
    names.push("never-defined".to_string());
    names.push("+".to_string()); // a builtin, behind everything
    names
}

/// Lookup `name` and return (found, meter snapshot) — the structural
/// fingerprint the faithful cost model sees.
fn probe(interp: &mut Interp, name: &str) -> (bool, culi_core::cost::Counters) {
    let sym = interp.strings.intern(name.as_bytes());
    let mut meter = Meter::new();
    let hit = interp
        .envs
        .lookup(interp.global, sym, &interp.strings, &mut meter)
        .is_some();
    (hit, meter.snapshot())
}

fn converges_after(n: usize, seed: u64) {
    let mut master = Interp::default();
    let epoch0 = master.envs.sync_epoch();
    let mut by_replay = master.clone();
    let mut by_snapshot = master.clone();

    let mut rng = Rng(seed);
    mutate(&mut master, &mut rng, n);

    // Repair one replica incrementally, the other from a snapshot.
    let mut replay = SyncPacket::default();
    replay.encode_since(&master, epoch0);
    replay.apply(&mut by_replay).unwrap();
    let mut snapshot = EnvSnapshot::default();
    snapshot.encode(&master);
    snapshot.apply(&mut by_snapshot).unwrap();

    // Convergence: identical visibility, identical values, identical
    // faithful-scan charges — against the master and each other.
    for name in touched_symbols() {
        let (hit_m, charges_m) = probe(&mut master, &name);
        let (hit_r, charges_r) = probe(&mut by_replay, &name);
        let (hit_s, charges_s) = probe(&mut by_snapshot, &name);
        assert_eq!(hit_m, hit_r, "replay visibility of {name} (n={n})");
        assert_eq!(hit_m, hit_s, "snapshot visibility of {name} (n={n})");
        assert_eq!(charges_m, charges_r, "replay charges of {name} (n={n})");
        assert_eq!(charges_m, charges_s, "snapshot charges of {name} (n={n})");
    }
    // Values converge observably: evaluate every defined symbol.
    for i in 0..DISTINCT_SYMS {
        let src = format!("s{i}");
        let want = master.eval_str(&src).unwrap();
        assert_eq!(by_replay.eval_str(&src).unwrap(), want, "{src} (n={n})");
        assert_eq!(by_snapshot.eval_str(&src).unwrap(), want, "{src} (n={n})");
    }

    // Size bound: the snapshot is proportional to the live environment,
    // never to the mutation volume. The replay packet grows linearly
    // with n (no GC ran, so nothing was compacted).
    assert_eq!(replay.len(), n);
    assert!(
        snapshot.record_count() <= master.envs.logged_binding_count(),
        "snapshot records {} vs live bindings {}",
        snapshot.record_count(),
        master.envs.logged_binding_count()
    );
}

#[test]
fn snapshot_converges_after_10_mutations() {
    for seed in [1, 7, 42] {
        converges_after(10, seed);
    }
}

#[test]
fn snapshot_converges_after_1k_mutations() {
    for seed in [1, 7, 42] {
        converges_after(1_000, seed);
    }
}

#[test]
fn snapshot_converges_after_10k_mutations() {
    converges_after(10_000, 42);
}

/// The measured bound: once the mutation volume passes the live-binding
/// count, the snapshot is the strictly smaller packet. For overwrite
/// churn (`setq` on existing bindings — the unbounded-log scenario from
/// the roadmap) its size is *independent* of the mutation volume; the
/// replay packet keeps growing linearly. (Shadowing redefinitions grow
/// the live environment itself, so there the snapshot tracks the live
/// size — which is exactly the faithful lower bound.)
#[test]
fn snapshot_size_is_bounded_regardless_of_define_volume() {
    let sizes: Vec<(usize, usize, usize)> = [1_000usize, 10_000]
        .into_iter()
        .map(|n| {
            let mut master = Interp::default();
            let epoch0 = master.envs.sync_epoch();
            let mut rng = Rng(42);
            for _ in 0..n {
                let sym = rng.below(DISTINCT_SYMS);
                let val = rng.below(1_000_000);
                master.eval_str(&format!("(setq s{sym} {val})")).unwrap();
            }
            let mut replay = SyncPacket::default();
            replay.encode_since(&master, epoch0);
            let mut snapshot = EnvSnapshot::default();
            snapshot.encode(&master);
            (n, replay.byte_size(), snapshot.byte_size())
        })
        .collect();
    for &(n, replay_bytes, snapshot_bytes) in &sizes {
        assert!(
            snapshot_bytes < replay_bytes,
            "n={n}: snapshot {snapshot_bytes} B vs replay {replay_bytes} B"
        );
    }
    let (snap_1k, snap_10k) = (sizes[0].2, sizes[1].2);
    assert_eq!(
        snap_1k, snap_10k,
        "snapshot size must not track overwrite volume"
    );
    let (replay_1k, replay_10k) = (sizes[0].1, sizes[1].1);
    assert!(
        replay_10k > 8 * replay_1k,
        "replay packet should grow with volume: {replay_1k} B → {replay_10k} B"
    );
}

/// Once GC compaction drops shadowed defines, the log records the
/// faithfulness frontier and a stale replica must take the snapshot
/// path; the snapshot still reproduces the master's exact structure.
#[test]
fn snapshot_repairs_replicas_stranded_by_compaction() {
    let mut master = Interp::default();
    let epoch0 = master.envs.sync_epoch();
    let mut stale = master.clone();
    // Enough churn (with shadowing redefines) to cross the compaction
    // threshold, then a collection to trigger it.
    let mut rng = Rng(7);
    mutate(&mut master, &mut rng, 500);
    for _ in 0..3 {
        master.eval_str("(defun f1 (x) (* x s1))").unwrap();
    }
    culi_core::gc::collect(&mut master, &[]);
    assert!(
        master.envs.sync_replay_faithful_since() > epoch0,
        "compaction with shadowing redefines must move the frontier"
    );
    let mut snapshot = EnvSnapshot::default();
    snapshot.encode(&master);
    snapshot.apply(&mut stale).unwrap();
    for name in touched_symbols() {
        let (hit_m, charges_m) = probe(&mut master, &name);
        let (hit_s, charges_s) = probe(&mut stale, &name);
        assert_eq!(hit_m, hit_s, "{name}");
        assert_eq!(charges_m, charges_s, "{name}");
    }
}
