//! Abort safety under runaway containment (PR 6).
//!
//! A fuel or heap abort must be a *clean* event: the interpreter stays
//! reusable, GC reclaims the aborted command's garbage, the meter stays
//! monotone, and — crucially for the differential fault harness — a
//! fueled run that *completes* is byte-identical (output and every
//! counter) to an unlimited run, so containment is invisible unless it
//! actually fires. These properties are what lets every backend arm
//! budgets unconditionally.

use culi_core::{gc, CuliError, Interp, InterpConfig};
use proptest::prelude::*;

/// A deterministic little program drawn from a seed: bounded loops,
/// accumulator mutation, list building, and shallow recursion — enough
/// variety to hit the evaluator's alloc/lookup/apply paths with widely
/// varying step counts.
fn program(seed: u64) -> String {
    let n = 1 + seed % 60;
    match seed % 5 {
        0 => format!("(setq acc 0) (dotimes (i {n}) (setq acc (+ acc i))) acc"),
        1 => format!(
            "(defun f{s} (k) (if (< k 2) k (+ (f{s} (- k 1)) (f{s} (- k 2))))) (f{s} {m})",
            s = seed % 7,
            m = 3 + seed % 10
        ),
        2 => format!("(setq xs nil) (dotimes (i {n}) (setq xs (cons i xs))) (car xs)"),
        3 => format!("(* {} (+ {} {}))", seed % 9, seed % 13, seed % 17),
        _ => format!("(dotimes (i {n}) (list i i i)) (+ {n} 1)"),
    }
}

fn interp(fuel_budget: u64) -> Interp {
    Interp::new(InterpConfig {
        arena_capacity: 1 << 14,
        fuel_budget,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever a random (program, budget) pair does — complete, exhaust
    /// its fuel, or fail some other way — the abort is clean: the meter
    /// never runs backwards, the very next command evaluates normally on
    /// a fresh budget, and a GC leaves a working session.
    #[test]
    fn any_abort_leaves_the_interpreter_reusable(
        seed in 0u64..4096,
        budget in 8u64..4000,
    ) {
        let mut i = interp(budget);
        let before = i.meter.snapshot();
        let outcome = i.eval_str(&program(seed));
        let after = i.meter.snapshot();
        // delta_since underflows (and panics in debug) if any counter ran
        // backwards, so computing it doubles as the monotonicity check.
        let spent = after.delta_since(&before);
        prop_assert!(after.total() >= before.total(), "meter ran backwards");
        // Fuel exhaustion reports the armed budget verbatim; the abort
        // fires promptly, not after unbounded overshoot.
        if let Err(CuliError::FuelExhausted { budget: b }) = &outcome {
            prop_assert_eq!(*b, budget);
            prop_assert!(
                spent.eval_steps <= budget + 4,
                "abort overshot the budget: {} steps vs {budget}",
                spent.eval_steps
            );
        }
        // The session survives regardless of how the command ended.
        prop_assert_eq!(i.eval_str("(+ 1 2)").unwrap(), "3");
        gc::collect(&mut i, &[]);
        prop_assert_eq!(i.eval_str("(* 6 7)").unwrap(), "42");
    }

    /// Containment is invisible when it does not fire: a fueled run that
    /// completes produces the same output and the exact same counter
    /// deltas as an unlimited interpreter running the same program.
    #[test]
    fn completed_fueled_runs_match_unlimited_runs_exactly(seed in 0u64..4096) {
        let src = program(seed);
        let mut free = interp(culi_core::cost::FUEL_UNLIMITED);
        let f0 = free.meter.snapshot();
        let reference = free.eval_str(&src);
        let free_delta = free.meter.snapshot().delta_since(&f0);

        let mut fueled = interp(1_000_000);
        let c0 = fueled.meter.snapshot();
        let contained = fueled.eval_str(&src);
        let fueled_delta = fueled.meter.snapshot().delta_since(&c0);

        match (reference, contained) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "outputs diverged for {}", src),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "outcomes diverged: {:?} vs {:?}", a, b),
        }
        prop_assert_eq!(free_delta, fueled_delta, "fuel checking leaked into counters");
    }

    /// Heap aborts compose with fuel aborts: under a tight heap limit an
    /// allocation-heavy program dies with `HeapLimitExceeded`, GC reclaims
    /// the wreckage, and the arena is back to a usable session.
    #[test]
    fn heap_aborts_are_reclaimed_by_gc(limit in 512usize..2048) {
        let mut i = Interp::new(InterpConfig {
            arena_capacity: 1 << 14,
            heap_limit: limit,
            ..Default::default()
        });
        match i.eval_str("(dotimes (i 1000000) (list i i i i))") {
            Err(CuliError::HeapLimitExceeded { limit: l }) => prop_assert_eq!(l, limit),
            other => prop_assert!(false, "expected HeapLimitExceeded, got {other:?}"),
        }
        gc::collect(&mut i, &[]);
        prop_assert_eq!(i.eval_str("(+ 1 2)").unwrap(), "3");
        prop_assert_eq!(i.eval_str("(list 1 2 3)").unwrap(), "(1 2 3)");
    }
}
