//! Equivalence of the indexed environment against the paper-faithful scan,
//! and free-list arena behavior under fragmentation.
//!
//! The interpreter's cost model must stay bit-identical to the C
//! original's linear scans even though the real data structures changed
//! (hashed symbol index, intrusive free-list). These tests drive both
//! implementations over randomized environment trees and assert that the
//! resolved `NodeId` *and* the exact `Meter` deltas agree.

use culi_core::cost::Meter;
use culi_core::env::EnvArena;
use culi_core::strings::StrTable;
use culi_core::types::{EnvId, NodeId, StrId};
use culi_core::{Interp, InterpConfig};
use proptest::prelude::*;

/// A randomized environment tree: `shape[i]` picks the parent of env `i+1`
/// among the already-created envs, `defs` assigns (env, symbol, value)
/// triples, symbols drawn from a pool with many name-length collisions.
#[derive(Debug, Clone)]
struct TreeSpec {
    parents: Vec<usize>,
    defs: Vec<(usize, usize, usize)>,
    queries: Vec<(usize, usize)>,
}

fn tree_spec() -> impl Strategy<Value = TreeSpec> {
    (
        prop::collection::vec(0usize..64, 0..12),
        prop::collection::vec((0usize..64, 0usize..24, 1usize..1000), 0..80),
        prop::collection::vec((0usize..64, 0usize..24), 1..40),
    )
        .prop_map(|(parents, defs, queries)| TreeSpec {
            parents,
            defs,
            queries,
        })
}

/// Builds the symbol pool: short and long names, duplicated lengths.
fn symbol_pool(strings: &mut StrTable) -> Vec<StrId> {
    (0..24)
        .map(|i| {
            let name = match i % 4 {
                0 => format!("s{i}"),
                1 => format!("sym-{i}"),
                2 => format!("a-rather-long-symbol-name-{i}"),
                _ => format!("x{}", i / 4),
            };
            strings.intern(name.as_bytes())
        })
        .collect()
}

fn build(spec: &TreeSpec) -> (EnvArena, StrTable, Vec<EnvId>, Vec<StrId>) {
    let mut envs = EnvArena::new();
    let mut strings = StrTable::new();
    let pool = symbol_pool(&mut strings);
    let mut ids = vec![envs.push(None)];
    for &p in &spec.parents {
        let parent = ids[p % ids.len()];
        ids.push(envs.push(Some(parent)));
    }
    for &(e, s, v) in &spec.defs {
        let env = ids[e % ids.len()];
        let sym = pool[s % pool.len()];
        envs.define(env, sym, NodeId::new(v), &strings);
    }
    (envs, strings, ids, pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Indexed lookup returns the same node and charges the same meter
    /// deltas as the legacy scan, over randomized environment trees.
    #[test]
    fn indexed_lookup_equals_legacy_scan(spec in tree_spec()) {
        let (envs, strings, ids, pool) = build(&spec);
        for &(e, s) in &spec.queries {
            let env = ids[e % ids.len()];
            let sym = pool[s % pool.len()];
            let mut fast = Meter::new();
            let mut slow = Meter::new();
            let a = envs.lookup(env, sym, &strings, &mut fast);
            let b = envs.lookup_legacy(env, sym, &strings, &mut slow);
            prop_assert_eq!(a, b, "value diverged for {:?}", sym);
            prop_assert_eq!(fast.snapshot(), slow.snapshot(), "charges diverged for {:?}", sym);
        }
    }

    /// `set_nearest` charges exactly like a lookup of the same symbol and
    /// updates the same binding the legacy scan would have found.
    #[test]
    fn set_nearest_charges_match_lookup(spec in tree_spec()) {
        let (mut envs, strings, ids, pool) = build(&spec);
        for &(e, s) in &spec.queries {
            let env = ids[e % ids.len()];
            let sym = pool[s % pool.len()];
            let mut lookup_meter = Meter::new();
            let expect = envs.lookup_legacy(env, sym, &strings, &mut lookup_meter);
            let mut set_meter = Meter::new();
            let updated = envs.set_nearest(env, sym, NodeId::new(424_242), &strings, &mut set_meter);
            prop_assert_eq!(updated, expect.is_some());
            prop_assert_eq!(set_meter.snapshot(), lookup_meter.snapshot());
            if updated {
                let mut m = Meter::new();
                prop_assert_eq!(
                    envs.lookup_legacy(env, sym, &strings, &mut m),
                    Some(NodeId::new(424_242))
                );
            }
        }
    }

    /// Whole-interpreter check: random programs leave identical meters on
    /// an interpreter driven by the indexed path and one cross-validated by
    /// the legacy scan (the debug assertion inside `lookup` enforces the
    /// per-call agreement; this pins the end-to-end counter totals).
    #[test]
    fn program_meter_is_deterministic(seed in 0u64..500) {
        let program = format!(
            "(defun poke (a b) (+ a (* b {}))) (poke {} {})",
            seed % 7 + 1, seed % 13, seed % 11
        );
        let run = || {
            let mut i = Interp::new(InterpConfig { arena_capacity: 1 << 14, ..Default::default() });
            i.eval_str(&program).unwrap();
            i.meter.snapshot()
        };
        prop_assert_eq!(run(), run());
    }

    /// Free-list alloc on a randomly fragmented arena: every freed slot is
    /// reused before exhaustion, and `ArenaFull` lands at exact capacity.
    #[test]
    fn fragmented_arena_reuses_and_fills_exactly(
        free_pattern in prop::collection::vec(any::<bool>(), 32..128)
    ) {
        use culi_core::arena::NodeArena;
        use culi_core::node::Node;
        let cap = free_pattern.len();
        let mut arena = NodeArena::with_capacity(cap);
        let mut meter = Meter::new();
        let ids: Vec<NodeId> =
            (0..cap).map(|i| arena.alloc(Node::int(i as i64), &mut meter).unwrap()).collect();
        let mut freed = 0usize;
        for (id, &f) in ids.iter().zip(&free_pattern) {
            if f {
                arena.free(*id, &mut meter);
                freed += 1;
            }
        }
        prop_assert_eq!(arena.live(), cap - freed);
        for _ in 0..freed {
            arena.alloc(Node::int(0), &mut meter).unwrap();
        }
        prop_assert_eq!(arena.live(), cap);
        prop_assert!(arena.alloc(Node::int(0), &mut meter).is_err(), "must be exactly full");
        let c = meter.snapshot();
        prop_assert_eq!(c.nodes_alloc, (cap + freed) as u64);
        prop_assert_eq!(c.nodes_freed, freed as u64);
    }
}

/// PR 5: the promoted-environment hit-charge cache is epoch-stamped and
/// lazily recomputed — a 10k-define burst no longer eagerly reshifts the
/// whole index, and every charge must still be bit-identical to the
/// eager/faithful scan. Exercises stale entries at every depth (defined
/// early, looked up late), shadowing redefinitions, repeated hits on the
/// same (now-fresh) entry, and misses.
#[test]
fn bulk_defines_charge_like_the_faithful_scan() {
    let mut envs = EnvArena::new();
    let mut strings = StrTable::new();
    let g = envs.push(None);
    let n = 10_000usize;
    let syms: Vec<StrId> = (0..n)
        .map(|i| {
            // Mixed name lengths so min_len_sum has real structure.
            let name = match i % 3 {
                0 => format!("s{i}"),
                1 => format!("symbol-number-{i}"),
                _ => format!("an-extremely-long-symbol-name-for-charge-tests-{i}"),
            };
            strings.intern(name.as_bytes())
        })
        .collect();
    for (i, &sym) in syms.iter().enumerate() {
        envs.define(g, sym, NodeId::new(i), &strings);
        if i % 17 == 0 {
            // Shadowing redefinition mid-burst: the entry is replaced and
            // restamped at the new head position.
            envs.define(g, syms[i / 2], NodeId::new(i + n), &strings);
        }
    }
    assert!(envs.is_promoted(g));
    let missing = strings.intern(b"never-defined-here");
    // Sample hits across the whole staleness range, the miss path, and a
    // second access of each sampled entry (now fresh: the pure cache hit).
    for round in 0..2 {
        for k in (0..n).step_by(157).chain([0, n - 1]) {
            let sym = syms[k];
            let mut fast = Meter::new();
            let mut slow = Meter::new();
            let a = envs.lookup(g, sym, &strings, &mut fast);
            let b = envs.lookup_legacy(g, sym, &strings, &mut slow);
            assert_eq!(a, b, "round {round}: value diverged for sym {k}");
            assert_eq!(
                fast.snapshot(),
                slow.snapshot(),
                "round {round}: charges diverged for sym {k}"
            );
        }
        let mut fast = Meter::new();
        let mut slow = Meter::new();
        assert_eq!(envs.lookup(g, missing, &strings, &mut fast), None);
        assert_eq!(envs.lookup_legacy(g, missing, &strings, &mut slow), None);
        assert_eq!(
            fast.snapshot(),
            slow.snapshot(),
            "round {round}: miss charges"
        );
    }
    // Defines *after* a refresh go back to the lazy path cleanly.
    let late = strings.intern(b"late-arrival");
    envs.define(g, late, NodeId::new(7), &strings);
    for &sym in &[late, syms[0], syms[n / 2]] {
        let mut fast = Meter::new();
        let mut slow = Meter::new();
        assert_eq!(
            envs.lookup(g, sym, &strings, &mut fast),
            envs.lookup_legacy(g, sym, &strings, &mut slow)
        );
        assert_eq!(fast.snapshot(), slow.snapshot());
    }
}

/// Same invariant end-to-end through the interpreter: a define burst past
/// the promotion threshold, followed by a GC (which compacts the binding
/// arena and positionally remaps stale index entries), still resolves and
/// charges exactly like the faithful scan.
#[test]
fn define_burst_survives_gc_with_exact_charges() {
    let mut i = Interp::new(InterpConfig {
        arena_capacity: 1 << 16,
        ..Default::default()
    });
    for k in 0..300 {
        i.eval_str(&format!("(setq bulk-{k} {k})")).unwrap();
    }
    culi_core::gc::collect(&mut i, &[]);
    // Post-GC lookups hit relocated bindings through lazily-stamped
    // entries; the debug cross-check inside lookup asserts per-call
    // agreement, and the visible values must survive the compaction.
    assert_eq!(i.eval_str("bulk-0").unwrap(), "0");
    assert_eq!(i.eval_str("bulk-299").unwrap(), "299");
    assert_eq!(i.eval_str("(+ bulk-7 bulk-292)").unwrap(), "299");
}

/// GC reclaims transient environments: a long session of form applications
/// keeps both the environment count and the binding count bounded.
#[test]
fn gc_bounds_environment_growth() {
    let mut i = Interp::new(InterpConfig {
        arena_capacity: 1 << 14,
        ..Default::default()
    });
    i.eval_str("(defun burn (n) (if (< n 1) 0 (burn (- n 1))))")
        .unwrap();
    let mut peak_envs = 0;
    for _ in 0..50 {
        i.eval_str("(burn 40)").unwrap();
        culi_core::gc::collect(&mut i, &[]);
        peak_envs = peak_envs.max(i.envs.env_count());
    }
    assert!(
        peak_envs <= 64,
        "transient environments must be reclaimed, saw {peak_envs}"
    );
    assert!(
        i.envs.binding_count() <= 256,
        "binding arena must stay compact, saw {}",
        i.envs.binding_count()
    );
}
