//! Property tests for the flat postbox codec: any tree the parser can
//! produce must encode → decode into a *different* interpreter and print
//! back identically, and batches must decode independently of order.

use culi_core::postbox::{FlatTree, SyncPacket};
use culi_core::printer::print_to_string;
use culi_core::Interp;
use proptest::prelude::*;

/// A randomized s-expression source string: atoms (ints, floats, nil, T,
/// symbols, strings) nested in lists up to depth 4.
fn sexpr() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        any::<i32>().prop_map(|v| v.to_string()),
        (0u16..1000u16, 0u16..100u16).prop_map(|(a, b)| format!("{a}.{b}")),
        Just("nil".to_string()),
        Just("T".to_string()),
        Just("()".to_string()),
        "[a-z]{1,8}".prop_map(|s| s.to_string()),
        "[a-z]{0,6}".prop_map(|s| format!("\"{s}\"")),
    ];
    atom.prop_recursive(4, 64, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(|kids| format!("({})", kids.join(" ")))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode in one interpreter, decode in a fresh one, print both: the
    /// outputs must agree byte for byte.
    #[test]
    fn flat_tree_roundtrips_through_a_fresh_interpreter(src in sexpr()) {
        let mut master = Interp::default();
        let forms = culi_core::parser::parse(&mut master, src.as_bytes()).unwrap();
        prop_assert_eq!(forms.len(), 1);
        let mut buf = FlatTree::default();
        buf.push_tree(&master, forms[0]);
        let mut replica = Interp::default();
        let decoded = buf.decode(0, &mut replica).unwrap();
        prop_assert_eq!(
            print_to_string(&mut master, forms[0]).unwrap(),
            print_to_string(&mut replica, decoded).unwrap()
        );
    }

    /// A batch of trees decodes per index, in any order, into the same
    /// printed values — and a cleared buffer is reusable.
    #[test]
    fn batches_decode_in_any_order(srcs in prop::collection::vec(sexpr(), 1..6)) {
        let mut master = Interp::default();
        let mut buf = FlatTree::default();
        let mut expected = Vec::new();
        for src in &srcs {
            let forms = culi_core::parser::parse(&mut master, src.as_bytes()).unwrap();
            buf.push_tree(&master, forms[0]);
            expected.push(print_to_string(&mut master, forms[0]).unwrap());
        }
        let mut replica = Interp::default();
        // Reverse order: decoding must not depend on sequential reads.
        for i in (0..srcs.len()).rev() {
            let decoded = buf.decode(i, &mut replica).unwrap();
            prop_assert_eq!(
                &print_to_string(&mut replica, decoded).unwrap(),
                &expected[i]
            );
        }
        buf.clear();
        prop_assert!(buf.is_empty());
    }

    /// Replaying a master's sync log into a stale fork converges the
    /// fork's visible global bindings onto the master's, whatever mix of
    /// fresh defines, shadowing redefines and sets happened in between.
    #[test]
    fn sync_replay_converges_replicas(
        ops in prop::collection::vec((0usize..6, -1000i64..1000), 1..24)
    ) {
        let mut master = Interp::default();
        let epoch0 = master.envs.sync_epoch();
        let mut replica = master.clone();
        for (slot, value) in &ops {
            // setq defines on first touch, sets afterwards.
            master.eval_str(&format!("(setq v{slot} {value})")).unwrap();
        }
        let mut packet = SyncPacket::default();
        packet.encode_since(&master, epoch0);
        packet.apply(&mut replica).unwrap();
        for (slot, _) in &ops {
            prop_assert_eq!(
                master.eval_str(&format!("v{slot}")).unwrap(),
                replica.eval_str(&format!("v{slot}")).unwrap()
            );
        }
    }
}
