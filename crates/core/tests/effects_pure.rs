//! Soundness of the effect classifier (`culi_core::effects`): any
//! expression it marks **pure** must evaluate
//!
//! 1. with **zero sync-log growth** — no persistent-environment define or
//!    mutation ever reaches the worker synchronization log — and
//! 2. with **bit-identical meter counters and results** whether it runs
//!    on the master interpreter or on a forked worker seat (the staging
//!    dispatchers rely on both: a pure operand may be evaluated ahead of
//!    in-flight sections without changing any backend's observable state
//!    or charges).
//!
//! The generator mixes pure constructs (arithmetic, list builders,
//! conditionals, loops, quoting) with impure ones (`setq`, user-form
//! calls, `eval`) at every nesting level; classified-impure cases are
//! skipped (conservatism is allowed, unsoundness is not), and directed
//! tests pin the constructs that must never classify pure.

use culi_core::cost::Counters;
use culi_core::eval::{eval, SequentialHook};
use culi_core::{effects, Interp, InterpConfig};
use proptest::prelude::*;

/// A generated expression tree, rendered to CuLi source.
#[derive(Debug, Clone)]
enum Expr {
    Int(i64),
    Str(u8),
    G,
    Xs,
    Unbound,
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    List(Vec<Expr>),
    Car(Box<Expr>),
    Cons(Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    Progn(Vec<Expr>),
    Length(Box<Expr>),
    NumToStr(Box<Expr>),
    Dotimes(u8, Box<Expr>),
    Quote(Box<Expr>),
    /// `(quasiquote <rendered>)`: the payload is a *template* — even a
    /// rendered impure construct inside is never evaluated, so the whole
    /// form must classify pure and expand effect-free on master and seat
    /// alike. (A rendered hole-carrying variant nested inside lands under
    /// an extra backquote level, where its holes stay literal — the
    /// level-tracked classifier and the expander must agree on that.)
    Quasi(Box<Expr>),
    /// `` `(a ,<e>) ``: a level-1 hole that *fires* — the template is
    /// pure iff `<e>` is.
    QuasiHole(Box<Expr>),
    /// `` `(h ,@(list <e>)) ``: a firing splice hole — pure iff `<e>` is.
    QuasiSplice(Box<Expr>),
    /// `` `(a `(b ,,<e>)) ``: a double-comma hole under a nested
    /// backquote; the inner comma fires at this expansion, so purity
    /// again follows `<e>`.
    QuasiNested(Box<Expr>),
    /// `(mapcar 1+ <e>)`: pure-builtin callable — pure iff `<e>` is.
    MapcarBuiltin(Box<Expr>),
    /// `(mapcar (lambda (w) (+ w <a>)) <b>)`: literal lambda with a
    /// generated body — pure iff both payloads are.
    MapcarLambda(Box<Expr>, Box<Expr>),
    /// `(funcall + <a> <b>)`: pure-builtin callable via funcall.
    FuncallAdd(Box<Expr>, Box<Expr>),
    // Impure constructs — must classify impure wherever they appear.
    SetG(Box<Expr>),
    CallF(Box<Expr>),
    Eval(Box<Expr>),
    /// `(mapcar f <e>)`: user-form callable — impure wherever it appears.
    MapcarF(Box<Expr>),
}

fn render(e: &Expr, out: &mut String) {
    match e {
        Expr::Int(v) => out.push_str(&v.to_string()),
        Expr::Str(n) => out.push_str(&format!("\"s{n}\"")),
        Expr::G => out.push('g'),
        Expr::Xs => out.push_str("xs"),
        Expr::Unbound => out.push_str("loose"),
        Expr::Add(a, b) => render2(out, "+", a, b),
        Expr::Mul(a, b) => render2(out, "*", a, b),
        Expr::List(items) => {
            out.push_str("(list");
            for item in items {
                out.push(' ');
                render(item, out);
            }
            out.push(')');
        }
        Expr::Car(a) => render1(out, "car", a),
        Expr::Cons(a, b) => render2(out, "cons", a, b),
        Expr::If(c, t, f) => {
            out.push_str("(if ");
            render(c, out);
            out.push(' ');
            render(t, out);
            out.push(' ');
            render(f, out);
            out.push(')');
        }
        Expr::Progn(items) => {
            out.push_str("(progn");
            for item in items {
                out.push(' ');
                render(item, out);
            }
            out.push(')');
        }
        Expr::Length(a) => render1(out, "length", a),
        Expr::NumToStr(a) => render1(out, "number-to-string", a),
        Expr::Dotimes(n, body) => {
            out.push_str(&format!("(dotimes (k {}) ", n % 4));
            render(body, out);
            out.push(')');
        }
        Expr::Quote(a) => render1(out, "quote", a),
        Expr::Quasi(a) => render1(out, "quasiquote", a),
        Expr::QuasiHole(a) => {
            out.push_str("(quasiquote (a (unquote ");
            render(a, out);
            out.push_str(")))");
        }
        Expr::QuasiSplice(a) => {
            out.push_str("(quasiquote (h (unquote-splicing (list ");
            render(a, out);
            out.push_str("))))");
        }
        Expr::QuasiNested(a) => {
            out.push_str("(quasiquote (a (quasiquote (b (unquote (unquote ");
            render(a, out);
            out.push_str("))))))");
        }
        Expr::MapcarBuiltin(a) => render1(out, "mapcar 1+", a),
        Expr::MapcarLambda(a, b) => {
            out.push_str("(mapcar (lambda (w) (+ w ");
            render(a, out);
            out.push_str(")) ");
            render(b, out);
            out.push(')');
        }
        Expr::FuncallAdd(a, b) => render2(out, "funcall +", a, b),
        Expr::SetG(a) => render1(out, "setq g", a),
        Expr::CallF(a) => render1(out, "f", a),
        Expr::Eval(a) => render1(out, "eval", a),
        Expr::MapcarF(a) => render1(out, "mapcar f", a),
    }
}

fn render1(out: &mut String, op: &str, a: &Expr) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    render(a, out);
    out.push(')');
}

fn render2(out: &mut String, op: &str, a: &Expr, b: &Expr) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    render(a, out);
    out.push(' ');
    render(b, out);
    out.push(')');
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::Int),
        any::<u8>().prop_map(Expr::Str),
        Just(Expr::G),
        Just(Expr::Xs),
        Just(Expr::Unbound),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::List),
            inner.clone().prop_map(|a| Expr::Car(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Cons(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::If(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Progn),
            inner.clone().prop_map(|a| Expr::Length(Box::new(a))),
            inner.clone().prop_map(|a| Expr::NumToStr(Box::new(a))),
            (any::<u8>(), inner.clone()).prop_map(|(n, b)| Expr::Dotimes(n, Box::new(b))),
            inner.clone().prop_map(|a| Expr::Quote(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Quasi(Box::new(a))),
            inner.clone().prop_map(|a| Expr::QuasiHole(Box::new(a))),
            inner.clone().prop_map(|a| Expr::QuasiSplice(Box::new(a))),
            inner.clone().prop_map(|a| Expr::QuasiNested(Box::new(a))),
            inner.clone().prop_map(|a| Expr::MapcarBuiltin(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::MapcarLambda(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::FuncallAdd(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::SetG(Box::new(a))),
            inner.clone().prop_map(|a| Expr::CallF(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Eval(Box::new(a))),
            inner.clone().prop_map(|a| Expr::MapcarF(Box::new(a))),
        ]
    })
}

fn booted() -> Interp {
    let mut i = Interp::new(InterpConfig {
        arena_capacity: 1 << 18,
        ..Default::default()
    });
    for line in [
        "(setq g 7)",
        "(setq xs (list 1 2 3))",
        "(defun f (x) (progn (setq g (+ g x)) g))",
    ] {
        i.eval_str(line).unwrap();
    }
    i
}

/// Evaluates `form` in a fresh child environment of the global (the shape
/// of a worker seat's job environment), returning the printed result or
/// error text, the meter delta and the sync-log growth.
fn run_once(interp: &mut Interp, form: culi_core::NodeId) -> (String, Counters, usize) {
    let env = interp.envs.push(Some(interp.global));
    let log_before = interp.envs.sync_log_len();
    let m0 = interp.meter.snapshot();
    let outcome = eval(interp, &mut SequentialHook, form, env, 0);
    let delta = interp.meter.snapshot().delta_since(&m0);
    let log_growth = interp.envs.sync_log_len() - log_before;
    let printed = match outcome {
        Ok(node) => match culi_core::printer::print_to_string(interp, node) {
            Ok(s) => s,
            Err(e) => format!("print error: {e}"),
        },
        Err(e) => format!("error: {e}"),
    };
    (printed, delta, log_growth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Classified-pure expressions evaluate without touching the sync log
    /// and with bit-identical charges and results on the master and on a
    /// forked worker seat.
    #[test]
    fn pure_verdicts_are_effect_free_and_seat_independent(e in expr()) {
        let mut src = String::new();
        render(&e, &mut src);
        let mut master = booted();
        let forms = culi_core::parser::parse(&mut master, src.as_bytes()).unwrap();
        prop_assert_eq!(forms.len(), 1);
        let form = forms[0];
        if !effects::expr_is_pure(&master, master.global, form) {
            return Ok(()); // conservative rejection is always allowed
        }
        // Fork the seat *before* the master evaluates, like a pool worker.
        let mut seat = master.clone();
        let (out_m, d_m, log_m) = run_once(&mut master, form);
        let (out_s, d_s, log_s) = run_once(&mut seat, form);
        prop_assert_eq!(log_m, 0, "pure expr grew the master sync log: {}", src);
        prop_assert_eq!(log_s, 0, "pure expr grew the seat sync log: {}", src);
        prop_assert_eq!(&out_m, &out_s, "result diverged: {}", src);
        prop_assert_eq!(d_m, d_s, "meter charges diverged: {}", src);
    }
}

#[test]
fn impure_constructs_never_classify_pure() {
    let mut i = booted();
    for src in [
        "(setq g 1)",
        "(f 3)",
        "(eval (quote (setq g 1)))",
        "(progn 1 (setq g 2))",
        "(list (f 1))",
        "(if g (setq g 0) 1)",
        "(dotimes (k 3) (f k))",
        "(mapcar f xs)",
        "(funcall f 1)",
        "(mapcar (lambda (w) (f w)) xs)",
        "(mapcar (lambda (w) (w 1)) xs)",
    ] {
        let forms = culi_core::parser::parse(&mut i, src.as_bytes()).unwrap();
        assert!(
            !effects::expr_is_pure(&i, i.global, forms[0]),
            "classified pure: {src}"
        );
    }
}

/// The flip side of conservatism, pinned so the classifier keeps real
/// breadth: representative computed operands must classify pure.
#[test]
fn representative_computed_operands_classify_pure() {
    let mut i = booted();
    for src in [
        "(list g g)",
        "(+ 1 (* 2 g))",
        "(if (< g 0) (list 1 2) (list 3 4))",
        "(dotimes (k 3) (+ k g))",
        "(number-to-string (length xs))",
        "(quote (setq g 1))",
        // PR 5 (ROADMAP "classifier breadth, next ring"): quasiquote
        // templates with no unquote/splice holes expand by pure copying.
        "`(a b (c d))",
        "(quasiquote (1 (2 (3))))",
        "(quasiquote (setq g 1))",
        "(list `(a b) g)",
        // PR 6 (ROADMAP "classifier next ring"): mapcar/funcall over
        // visibly-pure callables run no unclassified code.
        "(mapcar 1+ xs)",
        "(mapcar (lambda (w) (* w w)) xs)",
        "(funcall + g 1)",
        "(list (mapcar abs xs) g)",
    ] {
        let forms = culi_core::parser::parse(&mut i, src.as_bytes()).unwrap();
        assert!(
            effects::expr_is_pure(&i, i.global, forms[0]),
            "classified impure: {src}"
        );
    }
}

/// Quasiquote hole classification is level-tracked (PR 7, ROADMAP
/// "classifier next ring"): a hole that fires at level 1 follows its
/// expression's purity; a hole protected by a nested backquote stays
/// literal at this expansion and must not poison the template.
#[test]
fn quasiquote_hole_level_tracking_pins() {
    let mut i = booted();
    // Pure firing holes — and protected impure holes — classify pure.
    for src in [
        "`(a ,g)",
        "`(1 ,@xs)",
        "`(a ,(+ g (length xs)))",
        "`(a `(b ,(setq g 1)))", // protected: stays literal here
        "(progn `(a) `(b ,(car xs)))",
        "`(a `(b ,,g))", // double comma: the inner one fires, purely
    ] {
        let forms = culi_core::parser::parse(&mut i, src.as_bytes()).unwrap();
        assert!(
            effects::expr_is_pure(&i, i.global, forms[0]),
            "classified impure: {src}"
        );
    }
    // Impure or malformed firing holes barrier the whole template.
    for src in [
        "`(a ,(f 1))",
        "`(a ,(setq g 1))",
        "`(1 ,@(f 1))",
        "`(a `(b ,,(f 1)))", // double comma firing user code
        "(progn `(a) `(b ,(f 1)))",
        "`(a (unquote))",
        "`,@xs",
    ] {
        let forms = culi_core::parser::parse(&mut i, src.as_bytes()).unwrap();
        assert!(
            !effects::expr_is_pure(&i, i.global, forms[0]),
            "classified pure: {src}"
        );
    }
}
