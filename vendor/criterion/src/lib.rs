//! A dependency-free stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness, API-compatible with the subset this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion cannot be resolved; this crate keeps every `benches/*.rs`
//! target compiling and *running* with real wall-clock measurements. It is
//! intentionally simple: per benchmark it warms up, picks an iteration
//! count that makes one sample take roughly `SAMPLE_TARGET` (~2 ms), collects a
//! fixed number of samples and reports the median time per iteration (plus
//! throughput when configured).
//!
//! Differences from real criterion: no statistical analysis beyond the
//! median/min/max, no HTML reports, no baseline storage. Set
//! `CULI_BENCH_FAST=1` to shrink sample counts (CI smoke runs).

use std::time::{Duration, Instant};

/// Target duration of one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, but some call sites still use it).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// How expensive batch setup is relative to the routine; only a hint in
/// real criterion and ignored here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The measurement context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a context, reading an optional benchmark-name filter from the
    /// command line (cargo bench passes extra args through).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Self { filter }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function("", f);
        group.finish();
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample-count hint; this harness uses a fixed schedule, so the value
    /// is accepted for API compatibility and otherwise ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; ignored (fixed schedule).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&full, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn fast_mode() -> bool {
    std::env::var("CULI_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn sample_count() -> usize {
    if fast_mode() {
        3
    } else {
        15
    }
}

/// Per-iteration timings collected for one benchmark.
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly; the routine's output is passed through
    /// `black_box` so the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate a single-iteration duration.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || iters_per_sample >= 1 << 24 {
                break;
            }
            iters_per_sample = (iters_per_sample * 2).max(1);
        }
        for _ in 0..sample_count() {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed section.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        // One warmup run.
        black_box(routine(setup()));
        let samples = if fast_mode() { 3 } else { 10 };
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let ns = start.elapsed().as_nanos() as f64;
            black_box(out);
            self.samples.push(ns.max(1.0));
        }
    }

    /// Like `iter_batched` but the routine borrows its input.
    pub fn iter_batched_ref<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(&mut setup()));
        let samples = if fast_mode() { 3 } else { 10 };
        for _ in 0..samples {
            let mut input = setup();
            let start = Instant::now();
            let out = routine(&mut input);
            let ns = start.elapsed().as_nanos() as f64;
            black_box(out);
            self.samples.push(ns.max(1.0));
        }
    }
}

fn report(name: &str, samples: &[f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            " {:>10.1} MiB/s",
            n as f64 / median * 1e9 / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!(" {:>10.1} Melem/s", n as f64 / median * 1e9 / 1e6),
    });
    println!(
        "{name:<40} time: [{} {} {}]{}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        rate.unwrap_or_default()
    );
}

/// Formats nanoseconds with criterion-like unit scaling.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group function running each target with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_iter() {
        std::env::set_var("CULI_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn unit_formatting() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
    }
}
