//! A dependency-free stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing framework, API-compatible with the subset this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be resolved. This crate implements the pieces the test
//! suites rely on:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_recursive` and boxing;
//! * [`any`] for the primitive types in use, [`Just`], ranges as
//!   strategies, tuple strategies, [`collection::vec`], `prop_oneof!`;
//! * string *literals* as strategies, generating from a practical regex
//!   subset (char classes with ranges, `{m,n}`/`?`/`*`/`+` quantifiers,
//!   groups, escapes) — see [`string_gen`];
//! * the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, plus
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Generation is driven by a deterministic [`test_runner::TestRng`] seeded
//! from the test name, so failures are reproducible run-to-run. Unlike real
//! proptest there is **no shrinking**: a failing case reports its inputs
//! verbatim.

pub mod collection;
pub mod strategy;
pub mod string_gen;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the whole-workspace suite
        // fast while still exercising the generators broadly.
        Self { cases: 64 }
    }
}

/// A failed property assertion (carried as an error so the harness can
/// report the generated inputs before panicking).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: String) -> Self {
        Self(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (with generated
/// inputs reported) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        __l, __r
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                        __l, __r, format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{:?}`",
                        __l
                    )));
                }
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0i64..100, s in "[a-z]{1,4}") { prop_assert!(x >= 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}\nwith inputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __err,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn rng() -> crate::test_runner::TestRng {
        crate::test_runner::TestRng::for_test("selftest")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (5i64..17).generate(&mut r);
            assert!((5..17).contains(&v));
            let u = (0usize..3).generate(&mut r);
            assert!(u < 3);
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut r = rng();
        let s = (0i32..100)
            .prop_map(|v| v * 2)
            .prop_filter("even", |v| *v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut r = rng();
        let s = prop::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut r = rng();
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen, [1u8, 2, 3].into_iter().collect());
    }

    #[test]
    fn recursive_terminates() {
        let mut r = rng();
        let leaf = (0i32..10).prop_map(|v| v.to_string());
        let tree = leaf.prop_recursive(3, 24, 4, |inner| {
            prop::collection::vec(inner, 0..4).prop_map(|kids| format!("({})", kids.join(" ")))
        });
        for _ in 0..200 {
            let s = tree.generate(&mut r);
            assert!(!s.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(a in -50i64..50, b in -50i64..50) {
            prop_assert_eq!(a + b, b + a);
            prop_assert!(a - b == -(b - a), "{} vs {}", a - b, -(b - a));
            prop_assert_ne!(a, a + 1);
        }

        #[test]
        fn string_strategies_match_pattern(s in "[+-]?[0-9]{1,6}") {
            let ok: i64 = s.parse().unwrap();
            prop_assert!(ok.abs() <= 999_999);
        }
    }
}
