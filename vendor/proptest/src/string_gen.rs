//! Generation of strings matching a practical regex subset.
//!
//! Supported syntax (everything the workspace's patterns use):
//!
//! * literal characters and `\x` escapes;
//! * character classes `[...]` with ranges (`a-z`, ` -~`) and literal `-`
//!   at the edges;
//! * groups `(...)`;
//! * quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8 reps);
//! * `.` as "any printable ASCII".
//!
//! Unsupported constructs (alternation `|`, anchors, negated classes)
//! panic loudly so a new pattern cannot silently generate garbage.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Piece {
    Lit(char),
    /// Inclusive char ranges.
    Class(Vec<(char, char)>),
    Group(Vec<(Piece, Quant)>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const ONE: Quant = Quant { min: 1, max: 1 };

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_seq(&chars, &mut pos, false, pattern);
    assert!(pos == chars.len(), "trailing regex input in {pattern:?}");
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

fn parse_seq(
    chars: &[char],
    pos: &mut usize,
    in_group: bool,
    pattern: &str,
) -> Vec<(Piece, Quant)> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        let piece = match c {
            ')' if in_group => break,
            '(' => {
                *pos += 1;
                let inner = parse_seq(chars, pos, true, pattern);
                assert!(
                    *pos < chars.len() && chars[*pos] == ')',
                    "unclosed group in {pattern:?}"
                );
                *pos += 1;
                Piece::Group(inner)
            }
            '[' => {
                *pos += 1;
                Piece::Class(parse_class(chars, pos, pattern))
            }
            '\\' => {
                *pos += 1;
                assert!(*pos < chars.len(), "dangling escape in {pattern:?}");
                let lit = chars[*pos];
                *pos += 1;
                Piece::Lit(lit)
            }
            '.' => {
                *pos += 1;
                Piece::Class(vec![(' ', '~')])
            }
            '|' | '^' | '$' => panic!("unsupported regex construct {c:?} in {pattern:?}"),
            _ => {
                *pos += 1;
                Piece::Lit(c)
            }
        };
        let quant = parse_quant(chars, pos, pattern);
        seq.push((piece, quant));
    }
    seq
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    assert!(
        *pos < chars.len() && chars[*pos] != '^',
        "negated classes unsupported in {pattern:?}"
    );
    while *pos < chars.len() && chars[*pos] != ']' {
        let mut c = chars[*pos];
        if c == '\\' {
            *pos += 1;
            assert!(
                *pos < chars.len(),
                "dangling escape in class of {pattern:?}"
            );
            c = chars[*pos];
        }
        *pos += 1;
        // A `-` forms a range unless it is the final char before `]`.
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let hi = chars[*pos + 1];
            assert!(c <= hi, "inverted class range in {pattern:?}");
            ranges.push((c, hi));
            *pos += 2;
        } else {
            ranges.push((c, c));
        }
    }
    assert!(*pos < chars.len(), "unclosed class in {pattern:?}");
    *pos += 1; // consume ']'
    assert!(!ranges.is_empty(), "empty class in {pattern:?}");
    ranges
}

fn parse_quant(chars: &[char], pos: &mut usize, pattern: &str) -> Quant {
    if *pos >= chars.len() {
        return ONE;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Quant { min: 0, max: 1 }
        }
        '*' => {
            *pos += 1;
            Quant { min: 0, max: 8 }
        }
        '+' => {
            *pos += 1;
            Quant { min: 1, max: 8 }
        }
        '{' => {
            *pos += 1;
            let mut min = 0u32;
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                min = min * 10 + chars[*pos].to_digit(10).unwrap();
                *pos += 1;
            }
            let max = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                let mut m = 0u32;
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    m = m * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                m
            } else {
                min
            };
            assert!(
                *pos < chars.len() && chars[*pos] == '}',
                "unclosed quantifier in {pattern:?}"
            );
            *pos += 1;
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            Quant { min, max }
        }
        _ => ONE,
    }
}

fn emit_seq(seq: &[(Piece, Quant)], rng: &mut TestRng, out: &mut String) {
    for (piece, quant) in seq {
        let reps = quant.min + rng.below((quant.max - quant.min + 1) as u64) as u32;
        for _ in 0..reps {
            emit_piece(piece, rng, out);
        }
    }
}

fn emit_piece(piece: &Piece, rng: &mut TestRng, out: &mut String) {
    match piece {
        Piece::Lit(c) => out.push(*c),
        Piece::Class(ranges) => {
            // Weight ranges by their width for a uniform char distribution.
            let total: u64 = ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let width = (hi as u64) - (lo as u64) + 1;
                if pick < width {
                    out.push(char::from_u32(lo as u32 + pick as u32).expect("class char"));
                    return;
                }
                pick -= width;
            }
            unreachable!("class pick out of bounds");
        }
        Piece::Group(inner) => emit_seq(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("string_gen")
    }

    #[test]
    fn fixed_repetition() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-z]{3}", &mut r);
            assert_eq!(s.len(), 3);
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn bounded_repetition_and_edge_dash() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9-]{0,6}", &mut r);
            assert!((1..=7).contains(&s.len()));
            assert!(s
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-'));
        }
    }

    #[test]
    fn printable_ascii_range() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[ -~]{0,16}", &mut r);
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn optional_group_and_escape() {
        let mut r = rng();
        let mut saw_exp = false;
        for _ in 0..300 {
            let s = generate("[+-]?[0-9]{1,3}\\.[0-9]{1,3}(e[+-]?[0-9]{1,2})?", &mut r);
            let _: f64 = s.parse().unwrap_or_else(|_| panic!("unparsable {s:?}"));
            saw_exp |= s.contains('e');
        }
        assert!(saw_exp, "exponent group never generated");
    }

    #[test]
    fn class_with_parens_and_quote() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[()a-z\" ]{0,12}", &mut r);
            assert!(s.chars().all(|c| c == '('
                || c == ')'
                || c == '"'
                || c == ' '
                || c.is_ascii_lowercase()));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn alternation_rejected() {
        generate("a|b", &mut rng());
    }
}
