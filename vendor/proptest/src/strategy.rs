//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::rc::Rc;

/// A value generator. Unlike real proptest there is no shrinking and no
/// intermediate `ValueTree`; a strategy simply produces values from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (regenerating up to a retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy behind a cheap clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds a recursive strategy: at each of `depth` levels the generator
    /// either stays with the shallower strategy or recurses through
    /// `recurse` (which receives the shallower strategy and wraps it). The
    /// `_desired_size`/`_expected_branch_size` hints are accepted for API
    /// compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let shallow = current.clone();
            let deeper = recurse(current).boxed();
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.below(2) == 0 {
                    deeper.generate(rng)
                } else {
                    shallow.generate(rng)
                }
            }));
        }
        current
    }
}

/// Type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform over bit patterns: covers the full exponent range,
        // subnormals, infinities and NaNs (callers filter what they need).
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy over a whole type's domain.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: `any::<i64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// String literals act as regex-subset strategies producing matching
/// strings (see [`crate::string_gen`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string_gen::generate(self, rng)
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Wraps the alternatives; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Self { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}
