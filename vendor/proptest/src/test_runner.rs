//! Deterministic random source for property generation.

/// A splitmix64 generator seeded from the test name, so every run of a
/// given property sees the same case sequence (reproducible failures, no
/// flaky CI) while different properties decorrelate.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Avoid the all-zero fixed point.
        Self { state: h | 1 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Modulo bias is negligible for test generation purposes.
            self.next_u64() % n
        }
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
